"""BX64 calling convention, modelled on System V AMD64.

* integer/pointer arguments: ``rdi, rsi, rdx, rcx, r8, r9`` in order;
* floating-point (double) arguments: ``xmm0..xmm7`` in order;
* integer/pointer return in ``rax``, double return in ``xmm0``;
* ``rbx, rbp, r12..r15`` (and ``rsp``) are callee-saved; every other GPR
  and *all* XMM registers are caller-saved;
* more than 6 int / 8 float args would go on the stack — the minic
  compiler rejects that many (the paper's kernels never need them).

The rewriter uses these sets verbatim: after tracing over a non-inlined
call it assumes "all caller-saved registers to be dead/unknown, while all
callee-saved registers keep their known state" (paper, Sec. III.G).
"""

from __future__ import annotations

from repro.isa.registers import GPR, XMM

#: Integer/pointer argument registers, in assignment order.
INT_ARG_REGS: tuple[GPR, ...] = (GPR.RDI, GPR.RSI, GPR.RDX, GPR.RCX, GPR.R8, GPR.R9)

#: Double argument registers, in assignment order.
FLOAT_ARG_REGS: tuple[XMM, ...] = (
    XMM.XMM0, XMM.XMM1, XMM.XMM2, XMM.XMM3,
    XMM.XMM4, XMM.XMM5, XMM.XMM6, XMM.XMM7,
)

RET_INT: GPR = GPR.RAX
RET_FLOAT: XMM = XMM.XMM0

#: GPRs a callee must preserve.
CALLEE_SAVED: frozenset[GPR] = frozenset(
    {GPR.RBX, GPR.RBP, GPR.R12, GPR.R13, GPR.R14, GPR.R15, GPR.RSP}
)

#: GPRs a call may clobber.
CALLER_SAVED: frozenset[GPR] = frozenset(set(GPR) - CALLEE_SAVED)

#: All XMM registers are caller-saved (as in SysV).
XMM_CALLER_SAVED: frozenset[XMM] = frozenset(XMM)


def classify_args(arg_types: list[str]) -> list[tuple[str, GPR | XMM]]:
    """Assign argument registers for a signature.

    ``arg_types`` entries are ``"int"`` (integers and pointers) or
    ``"float"`` (doubles).  Returns ``[(type, register), ...]`` in
    argument order.  Raises ``ValueError`` when registers run out
    (stack arguments are unsupported by this substrate).
    """
    out: list[tuple[str, GPR | XMM]] = []
    next_int = 0
    next_float = 0
    for t in arg_types:
        if t == "int":
            if next_int >= len(INT_ARG_REGS):
                raise ValueError("too many integer arguments (stack args unsupported)")
            out.append(("int", INT_ARG_REGS[next_int]))
            next_int += 1
        elif t == "float":
            if next_float >= len(FLOAT_ARG_REGS):
                raise ValueError("too many float arguments (stack args unsupported)")
            out.append(("float", FLOAT_ARG_REGS[next_float]))
            next_float += 1
        else:
            raise ValueError(f"unknown argument class {t!r}")
    return out
