#!/usr/bin/env python3
"""Chapel-style domain maps (paper Sec. VI): respecialize on redistribution.

User code always calls through the runtime's dispatch slot; the runtime
rewrites the accessor for the current distribution descriptor and swaps
the slot whenever the data is redistributed — specialization stays
transparent.

Run:  python examples/domainmap_respecialize.py
"""

from repro.models.domainmap import BLOCK, CYCLIC, DomainMapRuntime


def main() -> None:
    rt = DomainMapRuntime(nelems=512, nnodes=4)
    print(f"{rt.nelems} elements over {rt.nnodes} nodes, block distribution")

    generic = rt.sum()
    print(f"generic accessor:        {generic.cycles:>9,} cycles  "
          f"sum={generic.float_return:.3f}")

    result = rt.respecialize()
    assert result.ok, result.message
    fast = rt.sum()
    print(f"specialized accessor:    {fast.cycles:>9,} cycles  "
          f"sum={fast.float_return:.3f}  "
          f"({fast.cycles / generic.cycles:.1%} of generic)")

    print("\n-- load balancing: redistributing to a cyclic layout --")
    rt.redistribute(CYCLIC)   # runtime respecializes automatically
    after = rt.sum()
    print(f"after redistribution:    {after.cycles:>9,} cycles  "
          f"sum={after.float_return:.3f}  (same user code, new variant)")
    assert abs(after.float_return - generic.float_return) < 1e-9

    rt.redistribute(BLOCK)
    back = rt.sum()
    print(f"back to block layout:    {back.cycles:>9,} cycles  "
          f"sum={back.float_return:.3f}")
    print(f"\nspecializations generated so far: {rt.respecialize_count} "
          "(one per distribution change, as Sec. VI envisions)")


if __name__ == "__main__":
    main()
