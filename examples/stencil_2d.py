#!/usr/bin/env python3
"""The paper's Section V case study, end to end.

A generic 2-D stencil library takes *any* stencil pattern as a runtime
data structure (Figure 4).  We parse a stencil "from input" at runtime,
then ask BREW for a version of the generic ``apply`` specialized for
that stencil and matrix stride (Figure 5), and compare every variant the
paper measures — printing the Figure 6 style listing of the generated
code.

Run:  python examples/stencil_2d.py [points]
      points = 5 (default) or 9
"""

import sys

from repro.models.stencil import StencilLab, StencilSpec


def main() -> None:
    points = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spec = StencilSpec.five_point() if points == 5 else StencilSpec.nine_point()
    print(f"stencil parsed at runtime: {len(spec.points)} points "
          f"{[(f, dx, dy) for f, dx, dy in spec.points]}")

    lab = StencilLab(xs=32, ys=32, spec=spec)
    iters = 2

    generic = lab.run_generic(iters)
    manual = lab.run_manual(iters) if points == 5 else None
    rewritten = lab.rewrite_apply()
    assert rewritten.ok, rewritten.message
    rew_run = lab.run_with_apply(rewritten.entry, iters)
    grouped = lab.rewrite_apply(grouped=True)
    assert grouped.ok, grouped.message
    grouped_run = lab.run_with_apply(grouped.entry, iters, grouped=True)

    g = generic.cycles
    print()
    print(f"{'variant':<28}{'cycles':>12}{'vs generic':>12}")
    print(f"{'generic (Fig. 4)':<28}{g:>12,}{'100.0%':>12}")
    if manual is not None:
        print(f"{'manual specialization':<28}{manual.cycles:>12,}"
              f"{manual.cycles / g:>11.1%}")
    print(f"{'BREW rewritten (Fig. 5)':<28}{rew_run.cycles:>12,}"
          f"{rew_run.cycles / g:>11.1%}")
    print(f"{'BREW rewritten, grouped':<28}{grouped_run.cycles:>12,}"
          f"{grouped_run.cycles / g:>11.1%}")

    # correctness against the pure-Python oracle
    lab.run_with_apply(rewritten.entry, iters)
    got = lab.read_matrix(lab.final_matrix)
    lab.reset_matrices()
    expected = lab.read_matrix(lab.m1)
    for _ in range(iters):
        expected = lab.reference_sweep(expected)
    worst = max(abs(e - o) for e, o in zip(expected, got))
    print(f"\nmax |error| vs oracle: {worst:.3e}")

    print("\ngenerated code for the specialized apply (cf. paper Figure 6):")
    print(lab.machine.disassemble_function(rewritten.entry))


if __name__ == "__main__":
    main()
