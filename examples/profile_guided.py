#!/usr/bin/env python3
"""Profile-guided guarded specialization (paper Sec. III.D).

"It may be observed that a parameter to a function often is 42.  In this
case, a specific variant can be generated which is called after a check
for the parameter actually being 42.  Otherwise, the original function
should be executed."

We profile a strided accessor, discover the dominant stride, rewrite for
it, and install a guard stub — then show both the hot path win and the
graceful cold-path fallback.

Run:  python examples/profile_guided.py
"""

from repro import Machine
from repro.core.dispatch import specialize_hot_param
from repro.profiling import CallCounter, ValueProfiler

SOURCE = """
noinline double get(double *base, long stride, long i) {
    return base[i * stride];
}
noinline double reduce(double *base, long stride, long n) {
    double total = 0.0;
    for (long i = 0; i < n; i++)
        total = total + get(base, stride, i);
    return total;
}
"""


def main() -> None:
    machine = Machine()
    machine.load(SOURCE)
    n = 64
    base = machine.image.malloc(n * 8)
    for i in range(n):
        machine.memory.write_f64(base + 8 * i, float(i % 7))

    get_addr = machine.symbol("get")

    # --- profile a realistic workload (stride is almost always 1) ----
    counter = CallCounter(machine.cpu).attach()
    profiler = ValueProfiler(machine.cpu, watch={get_addr}).attach()
    for _ in range(9):
        machine.call("reduce", base, 1, n)
    machine.call("reduce", base, 2, n // 2)
    profiler.detach()
    counter.detach()

    hot_addr, calls = counter.hotspots(1)[0]
    name = machine.image.symbol_names.get(hot_addr, hex(hot_addr))
    profile = profiler.profile(get_addr)
    print(f"hotspot: {name} with {calls} calls")
    print(f"observed stride histogram: {dict(profile.values[2])}")
    print(f"dominant stride: {profile.hot_value(2)}")

    # --- specialize + guard ------------------------------------------
    spec = specialize_hot_param(
        machine, "get", profile, param=2, example_args=(base, 1, 0)
    )
    assert spec is not None
    print(f"\nguard stub at 0x{spec.entry:x}: "
          f"stride == {spec.guard_value} -> specialized variant, "
          "else -> original")

    hot = machine.call(spec.entry, base, 1, 5)
    orig = machine.call("get", base, 1, 5)
    cold = machine.call(spec.entry, base, 3, 5)
    cold_ref = machine.call("get", base, 3, 5)
    print(f"hot path:  {hot.cycles} cycles vs original {orig.cycles} "
          f"(value {hot.float_return} == {orig.float_return})")
    print(f"cold path: {cold.cycles} cycles, falls back to the original "
          f"(value {cold.float_return} == {cold_ref.float_return})")
    assert hot.float_return == orig.float_return
    assert cold.float_return == cold_ref.float_return


if __name__ == "__main__":
    main()
