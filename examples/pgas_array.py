#!/usr/bin/env python3
"""PGAS global arrays: the overhead the paper's introduction motivates.

A DASH-like global array is block-distributed over 4 simulated nodes
(remote nodes cost extra cycles per access).  The library accessor
``ga_get`` translates global indices and checks locality on *every*
access; BREW specializes the accessor and then the whole reduction
kernel for the concrete array descriptor.  A memory-access hook then
demonstrates the Sec. VIII outlook: detecting remote accesses in
arbitrary code (the first step towards RDMA prefetching).

Run:  python examples/pgas_array.py
"""

from repro.models.pgas import PgasLab


def main() -> None:
    lab = PgasLab(nelems=1024, nnodes=4, remote_cost=150)
    block = lab.block
    print(f"global array: {lab.nelems} doubles over {lab.nnodes} nodes "
          f"(block = {block}); node 0 perspective")

    generic = lab.sum_generic(0, block)
    accessor = lab.rewrite_accessor()
    assert accessor.ok, accessor.message
    via_acc = lab.sum_generic(0, block, getter=accessor.entry)
    kernel = lab.rewrite_kernel()
    assert kernel.ok, kernel.message
    via_kernel = lab.sum_with_kernel(kernel.entry, 0, block)
    manual = lab.sum_manual_local()

    g = generic.cycles
    print()
    print(f"{'variant':<42}{'cycles':>10}{'vs generic':>12}")
    for label, run in (
        ("generic operator[] via pointer", generic),
        ("rewritten accessor (descriptor folded)", via_acc),
        ("rewritten kernel (call inlined too)", via_kernel),
        ("hand-written local loop", manual),
    ):
        print(f"{label:<42}{run.cycles:>10,}{run.cycles / g:>11.1%}")
        assert abs(run.float_return - generic.float_return) < 1e-9

    # --- Sec. VIII outlook: detect -> preload -> redirect -------------
    from repro.models.rdma import RdmaPrefetcher

    pre = RdmaPrefetcher(lab)
    lo, hi = block, 4 * block  # three remote slices
    naive = pre.run_naive(lo, hi)
    run, preload_cost = pre.run_prefetched(lo, hi)
    print(f"\nSec. VIII in action over the remote range [{lo}, {hi}):")
    print(f"  naive traversal:  {naive.cycles:>8,} cycles, "
          f"{naive.perf.remote_accesses} remote accesses")
    print(f"  RDMA preload:     {preload_cost:>8,} cycles (bulk)")
    print(f"  redirected run:   {run.cycles:>8,} cycles, "
          f"{run.perf.remote_accesses} remote accesses")
    print(f"  total speedup:    {naive.cycles / (run.cycles + preload_cost):.2f}x, "
          "answers identical:", abs(run.float_return - naive.float_return) < 1e-9)


if __name__ == "__main__":
    main()
