#!/usr/bin/env python3
"""Quickstart: the paper's Figures 2 and 3, runnable.

Compile a C-like function into the simulated machine, call it, then use
the BREW API to generate a specialized drop-in replacement and call that
instead — including the Figure 3 case where a parameter declared known
is ignored at the call site afterwards.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.core import BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setpar

SOURCE = """
// the paper's running toy: int func(int a, int b)
noinline long func(long a, long b) {
    long acc = 0;
    for (long i = 0; i < b; i++)
        acc += a * i + 3;
    return acc;
}
"""


def main() -> None:
    machine = Machine()
    machine.load(SOURCE)

    # --- Figure 2: call the original function ------------------------
    x = machine.call("func", 1, 2)
    print(f"func(1, 2)            = {x.int_return}   [{x.cycles} cycles]")

    # --- Figure 2: rewrite func -------------------------------------
    rconf = brew_init_conf()
    brew_setpar(rconf, 1, BREW_KNOWN)
    brew_setpar(rconf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, rconf, "func", 1, 2)
    if not result.ok:
        # the paper's graceful-fallback idiom: keep using the original
        print(f"rewrite failed ({result.reason}); falling back")
        return
    print(f"rewritten entry       = 0x{result.entry:x} "
          f"({result.code_size} bytes, "
          f"{result.stats.folded_instructions} instructions folded away)")

    # --- call the rewritten version ----------------------------------
    x2 = machine.call(result.entry, 1, 2)
    print(f"newfunc(1, 2)         = {x2.int_return}   [{x2.cycles} cycles]")
    assert x2.int_return == x.int_return

    # --- Figure 3: known parameters are baked in ---------------------
    rconf2 = brew_init_conf()
    brew_setpar(rconf2, 1, BREW_KNOWN)   # a := 42, baked in
    result2 = brew_rewrite(machine, rconf2, "func", 42, 0)
    x3 = machine.call(result2.entry, 1, 5)   # "ignores value 1"
    x4 = machine.call("func", 42, 5)
    print(f"specialized(1, 5)     = {x3.int_return}  (== func(42, 5) = {x4.int_return})")
    assert x3.int_return == x4.int_return

    print()
    print("generated code for the fully-known rewrite:")
    print(machine.disassemble_function(result.entry))


if __name__ == "__main__":
    main()
