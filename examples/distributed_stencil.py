#!/usr/bin/env python3
"""The paper's introduction as a running program: a stencil sweep over a
PGAS-distributed matrix, accelerated in two BREW steps.

1. the productive version: a generic stencil applied through the PGAS
   library accessor (locality check per access, call per point);
2. ``brew_rewrite`` of the whole sweep — descriptor, stencil and
   accessor pointer known: the abstraction vanishes, halo rows are still
   fetched remotely per access;
3. halo exchange + respecialization against the halo-extended
   descriptor: remote traffic becomes two bulk transfers.

Run:  python examples/distributed_stencil.py
"""

from repro.models.distributed_stencil import DistributedStencilLab


def main() -> None:
    lab = DistributedStencilLab(xs=32, rows_per_node=8, nnodes=3, remote_cost=150)
    print(f"matrix {lab.xs}x{lab.ys} over {lab.nnodes} nodes "
          f"({lab.rowblock} rows each); node 0's sweep:\n")

    generic = lab.run_generic()
    oracle = lab.reference_out()

    def check() -> str:
        got = lab.read_out()
        worst = max(abs(a - b) for a, b in zip(got, oracle))
        return f"max|err|={worst:.1e}"

    g = generic.run.cycles
    print(f"{'generic (PGAS accessor via pointer)':<44}{g:>10,} cycles  "
          f"{generic.run.perf.remote_accesses} remote  {check()}")

    plain = lab.rewrite_sweep()
    assert plain.ok, plain.message
    rewritten = lab.run_rewritten(plain)
    print(f"{'BREW-specialized sweep':<44}{rewritten.run.cycles:>10,} cycles  "
          f"{rewritten.run.perf.remote_accesses} remote  {check()}  "
          f"({rewritten.run.cycles / g:.1%})")

    halo, _ = lab.run_halo_prefetched()
    print(f"{'+ halo exchange & respecialize':<44}{halo.total_cycles:>10,} cycles  "
          f"{halo.run.perf.remote_accesses} remote  {check()}  "
          f"({halo.total_cycles / g:.1%}, incl. {halo.extra_cycles} transfer)")

    print(f"\nrewrites: {plain.code_size} bytes specialized code, "
          f"{plain.stats.inlined_calls} calls inlined, "
          f"{plain.stats.folded_instructions} instructions folded away")


if __name__ == "__main__":
    main()
