#!/usr/bin/env python3
"""Debugging rewritten code (paper Sec. VIII): provenance listings.

"An important issue is support for debugging rewritten code which may
rely on re-generation of debug information on the fly."  Every
instruction the rewriter emits carries the original address it derives
from; ``Machine.explain_rewrite`` renders the annotated listing — which
instruction came from the traced function, which from an inlined
callee, and which is synthetic compensation the rewriter invented.

Run:  python examples/explain_rewrite.py
"""

from repro import Machine
from repro.core import BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setpar

SOURCE = """
noinline double weight(double v, double k) { return v * k + 1.0; }

noinline double blend(double a, double b, double k) {
    double wa = weight(a, k);
    double wb = weight(b, 2.0 * k);
    if (wa > wb) return wa - wb;
    return wb - wa;
}
"""


def main() -> None:
    machine = Machine()
    machine.load(SOURCE)

    conf = brew_init_conf()
    brew_setpar(conf, 3, BREW_KNOWN)   # k known
    result = brew_rewrite(machine, conf, "blend", 0.0, 0.0, 2.5)
    assert result.ok, result.message

    print(f"blend specialized for k=2.5 -> 0x{result.entry:x} "
          f"({result.code_size} bytes, "
          f"{result.stats.inlined_calls} calls inlined)\n")
    print("annotated listing (right column: where each instruction came from):\n")
    print(machine.explain_rewrite(result))

    synthetic = result.debug.synthetic_count
    total = len(result.debug.entries)
    print(f"\n{total - synthetic} instructions traced from the original "
          f"binaries, {synthetic} synthesized by the rewriter "
          "(spill flushes, materializations)")

    got = machine.call(result.entry, 1.0, 4.0, 2.5).float_return
    want = machine.call("blend", 1.0, 4.0, 2.5).float_return
    print(f"\nblend(1.0, 4.0, 2.5) = {got}  (original: {want})")
    assert got == want


if __name__ == "__main__":
    main()
