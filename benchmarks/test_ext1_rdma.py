"""EXT-1: the Sec. VIII RDMA-prefetch outlook, working (extension)."""

from repro.experiments.rdma_exp import ext1_rdma_prefetch


def test_ext1_rdma_prefetch(benchmark, record_experiment):
    exp = benchmark.pedantic(ext1_rdma_prefetch, rounds=1, iterations=1)
    record_experiment(exp)
