"""EXT-2: the distributed stencil ladder (extension)."""

from repro.experiments.dstencil_exp import ext2_distributed_stencil


def test_ext2_distributed_stencil(benchmark, record_experiment):
    exp = benchmark.pedantic(ext2_distributed_stencil, rounds=1, iterations=1)
    record_experiment(exp)
