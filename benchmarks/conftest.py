"""Shared benchmark plumbing.

Every benchmark regenerates one experiment of DESIGN.md §4: it builds
the workload, runs the paper-shaped comparison, asserts the qualitative
*shape checks*, prints the paper-style table, and persists it under
``benchmarks/results/`` — both as the human-readable table
EXPERIMENTS.md quotes and as ``BENCH_<id>.json``, a machine-readable
record (rows, checks, health counters, embedded metrics snapshot) so
the repo's perf trajectory can be diffed across PRs.

pytest-benchmark times the hot simulated run (simulator throughput);
the scientific output is the cycle table, which is deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
#: Repo root: every run also drops ``BENCH_<id>.json`` here so the
#: newest numbers are always at a fixed, top-level path (CI uploads
#: them as artifacts; local runs can diff them against the committed
#: trajectory without digging into ``benchmarks/results/``).
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _experiment_json(exp) -> dict:
    """A machine-readable snapshot of one experiment run."""
    doc = {
        "id": exp.id,
        "title": exp.title,
        "paper_locus": exp.paper_locus,
        "rows": [
            {
                "label": r.label,
                "cycles": r.cycles,
                "ratio": r.ratio,
                "paper": r.paper,
                "note": r.note,
            }
            for r in exp.rows
        ],
        "checks": [
            {"description": c.description, "holds": c.holds} for c in exp.checks
        ],
        "health": dict(exp.health),
    }
    # experiments that embed a one-line metrics snapshot in their listing
    # (EXT-3, EXT-4) get it parsed back out as structured data
    if exp.listing.startswith("metrics "):
        doc["metrics"] = json.loads(exp.listing[len("metrics "):])
    return doc


@pytest.fixture()
def record_experiment(results_dir):
    """Print an experiment table, persist it (text + JSON), and assert
    its checks."""

    def _record(exp) -> None:
        from repro.experiments import format_table

        table = format_table(exp)
        print()
        print(table)
        (results_dir / f"{exp.id.lower()}.txt").write_text(table)
        slug = exp.id.lower().replace("-", "")
        doc = json.dumps(_experiment_json(exp), indent=2, sort_keys=True) + "\n"
        (results_dir / f"BENCH_{slug}.json").write_text(doc)
        (REPO_ROOT / f"BENCH_{slug}.json").write_text(doc)
        failed = [c.description for c in exp.checks if not c.holds]
        assert not failed, f"{exp.id} shape checks failed: {failed}"

    return _record
