"""Shared benchmark plumbing.

Every benchmark regenerates one experiment of DESIGN.md §4: it builds
the workload, runs the paper-shaped comparison, asserts the qualitative
*shape checks*, prints the paper-style table, and persists it under
``benchmarks/results/`` (the tables EXPERIMENTS.md quotes).

pytest-benchmark times the hot simulated run (simulator throughput);
the scientific output is the cycle table, which is deterministic.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_experiment(results_dir):
    """Print an experiment table, persist it, and assert its checks."""

    def _record(exp) -> None:
        from repro.experiments import format_table

        table = format_table(exp)
        print()
        print(table)
        (results_dir / f"{exp.id.lower()}.txt").write_text(table)
        failed = [c.description for c in exp.checks if not c.holds]
        assert not failed, f"{exp.id} shape checks failed: {failed}"

    return _record
