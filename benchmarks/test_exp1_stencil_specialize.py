"""EXP-1: the headline Section V.A comparison (Table of DESIGN.md §4)."""

from repro.experiments.stencil_exp import exp1_specialize
from repro.models.stencil import StencilLab


def test_exp1_stencil_specialize(benchmark, record_experiment):
    exp = exp1_specialize(xs=24, ys=24, iters=2)
    record_experiment(exp)

    # time the hot path: one rewritten-apply sweep
    lab = StencilLab(xs=24, ys=24)
    rewritten = lab.rewrite_apply()
    assert rewritten.ok

    def run():
        return lab.run_with_apply(rewritten.entry, 1).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
