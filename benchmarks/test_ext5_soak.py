"""EXT-5: continuous-assurance soak — shadow sampling under injected
miscompiles, snapshot/restore recovery, admission control.

The benchmark's JSON record (``BENCH_ext5.json``) carries the soak's
detection counters (injections, divergences, escape windows), the
restart-recovery outcome (CRC-rejected records, restored entries), and
the overload-shedding / warm-dispatch numbers.
"""

from repro.experiments.soak_exp import ext5_soak


def test_ext5_soak(benchmark, record_experiment):
    exp = benchmark.pedantic(ext5_soak, rounds=1, iterations=1)
    record_experiment(exp)
