"""EXP-8: profile-guided guarded specialization (Sec. III.D)."""

from repro.experiments.profile_exp import exp8_value_profile


def test_exp8_value_profile(benchmark, record_experiment):
    exp = benchmark.pedantic(exp8_value_profile, rounds=1, iterations=1)
    record_experiment(exp)
