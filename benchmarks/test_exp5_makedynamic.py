"""EXP-5: the makeDynamic failed approach (Sec. V.C)."""

from repro.experiments.stencil_exp import exp5_makedynamic


def test_exp5_makedynamic(benchmark, record_experiment):
    exp = benchmark.pedantic(exp5_makedynamic, rounds=1, iterations=1)
    record_experiment(exp)
