"""EXT-3: chaos sweep over the distributed runtime's fault classes.

The benchmark's JSON record (``BENCH_ext3.json``) carries the seeded
fault-injection outcomes: every induced interconnect fault must surface
as a tagged failed ``TransferReport`` and every rewrite-pipeline fault
as a tagged failed ``RewriteResult`` — never a traceback, never a wrong
answer — plus the recovery/retry counters behind those claims.
"""

from repro.experiments.chaos_exp import ext3_chaos


def test_ext3_chaos(benchmark, record_experiment):
    exp = benchmark.pedantic(ext3_chaos, rounds=1, iterations=1)
    record_experiment(exp)
