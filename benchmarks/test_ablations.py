"""ABL-1..ABL-5: the design-choice ablations of DESIGN.md §4."""

from repro.experiments.ablations import (
    abl1_variant_threshold, abl2_inlining, abl3_passes, abl4_vectorize,
    abl5_rewrite_cost,
)


def test_abl1_variant_threshold(benchmark, record_experiment):
    exp = benchmark.pedantic(abl1_variant_threshold, rounds=1, iterations=1)
    record_experiment(exp)


def test_abl2_inlining(benchmark, record_experiment):
    exp = benchmark.pedantic(abl2_inlining, rounds=1, iterations=1)
    record_experiment(exp)


def test_abl3_passes(benchmark, record_experiment):
    exp = benchmark.pedantic(abl3_passes, rounds=1, iterations=1)
    record_experiment(exp)


def test_abl4_vectorize(benchmark, record_experiment):
    exp = benchmark.pedantic(abl4_vectorize, rounds=1, iterations=1)
    record_experiment(exp)


def test_abl5_rewrite_cost(benchmark, record_experiment):
    exp = benchmark.pedantic(abl5_rewrite_cost, rounds=1, iterations=1)
    record_experiment(exp)
