"""EXT-8: adversarial torture sweep + static vs runtime rewriting.

The benchmark's JSON record (``BENCH_ext8.json``) carries the torture
contract counters (images, rewritten-verified, graceful per reason,
miscompiles, escapes), the static-vs-runtime guest-cycle comparison on
the stencil and PGAS workloads, both modes' rewrite costs, and the warm
dispatch latencies — the numbers behind the paper's argument against
ahead-of-time rewriting, plus the robustness contract that argument
rests on.
"""

from repro.experiments.torture_exp import ext8_static_vs_runtime


def test_ext8_static_vs_runtime(benchmark, record_experiment):
    exp = benchmark.pedantic(ext8_static_vs_runtime, rounds=1, iterations=1)
    record_experiment(exp)
