"""EXT-6: two-tier execution engine (block-compiled vs interpreted).

The benchmark's JSON record (``BENCH_ext6.json``) carries host ns per
emulated instruction for both tiers on both workloads, the warm-cache
speedup, and the ``jit.*`` counters — the numbers that track whether
the simulator stays fast enough to host the larger experiments.
"""

from repro.experiments.jit_exp import ext6_blockjit


def test_ext6_blockjit(benchmark, record_experiment):
    exp = benchmark.pedantic(ext6_blockjit, rounds=1, iterations=1)
    record_experiment(exp)
