"""EXP-4: call overhead and the whole-sweep rewrite (Sec. V.B)."""

from repro.experiments.stencil_exp import exp4_call_overhead
from repro.models.stencil import StencilLab


def test_exp4_call_overhead(benchmark, record_experiment):
    exp = exp4_call_overhead(xs=24, ys=24, iters=2)
    record_experiment(exp)

    lab = StencilLab(xs=24, ys=24)
    sweep = lab.rewrite_sweep()
    assert sweep.ok

    def run():
        lab.reset_matrices()
        return lab.machine.call(
            sweep.entry, lab.m1, lab.m2, lab.xs, lab.ys, lab.s_addr,
            lab.machine.symbol("apply"),
        ).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
