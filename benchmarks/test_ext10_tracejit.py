"""EXT-10: tier-2 trace JIT (hot-cycle superblocks over the block engine).

The benchmark's JSON record (``BENCH_ext10.json``) carries warm wall
clock for all three execution tiers on both workloads, the trace-tier
speedups, the multi-version evidence from the phase-shifting PGAS
reduction, and the ``jit.trace.*`` counters — the numbers that track
whether the trace tier keeps paying for itself.
"""

from repro.experiments.tracejit_exp import ext10_tracejit


def test_ext10_tracejit(benchmark, record_experiment):
    exp = benchmark.pedantic(ext10_tracejit, rounds=1, iterations=1)
    record_experiment(exp)
