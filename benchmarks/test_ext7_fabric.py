"""EXT-7: the sharded rewrite fabric under a seeded fault schedule.

The benchmark's JSON record (``BENCH_ext7.json``) carries the p50/p99
dispatch-latency histogram rows and the fabric health counters — the
numbers the bulkhead story turns on (degradation has a measured cost;
a hostile tenant's shed rate dwarfs a well-behaved one's).

The mixed-tenant campaign runs here at 2*10^4 requests over 4 shards so
the benchmark suite stays interactive; ``ext7_fabric()``'s defaults
(10^5 over 6 shards) are the full-scale acceptance run.
"""

from repro.experiments.fabric_exp import ext7_fabric


def test_ext7_fabric(benchmark, record_experiment):
    exp = benchmark.pedantic(
        lambda: ext7_fabric(requests=20_000, shards=4),
        rounds=1, iterations=1,
    )
    record_experiment(exp)
