"""EXP-6: PGAS operator[] overhead (Sec. I/V motivation)."""

from repro.experiments.pgas_exp import exp6_pgas
from repro.models.pgas import PgasLab


def test_exp6_pgas(benchmark, record_experiment):
    exp = exp6_pgas(nelems=512, nnodes=4)
    record_experiment(exp)

    lab = PgasLab(nelems=512, nnodes=4)
    kernel = lab.rewrite_kernel()
    assert kernel.ok

    def run():
        return lab.sum_with_kernel(kernel.entry, 0, lab.block).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
