"""EXT-4: amortized specialization through the background service.

The benchmark's JSON record (``BENCH_ext4.json``) carries the service
hit rate and the cycle-domain amortization crossover, the two numbers
the ROADMAP's heavy-traffic north star turns on.
"""

from repro.experiments.amortization_exp import ext4_amortization


def test_ext4_amortization(benchmark, record_experiment):
    exp = benchmark.pedantic(ext4_amortization, rounds=1, iterations=1)
    record_experiment(exp)
