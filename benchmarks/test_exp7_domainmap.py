"""EXP-7: domain-map respecialization (Sec. VI)."""

from repro.experiments.domainmap_exp import exp7_domainmap
from repro.models.domainmap import DomainMapRuntime


def test_exp7_domainmap(benchmark, record_experiment):
    exp = exp7_domainmap(nelems=256, nnodes=4)
    record_experiment(exp)

    rt = DomainMapRuntime(nelems=256, nnodes=4)
    assert rt.respecialize().ok

    def run():
        return rt.sum().cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
