"""EXT-9: crash forensics — flight recorder, repro bundles, replay.

The benchmark's JSON record (``BENCH_ext9.json``) carries the capture
rates per layer (supervisor, shadow, torture, fabric), the replay
fidelity count (every bundle must re-execute to the identical failure
reason and bit-for-bit fingerprint), the minimizer's shrink factors,
and the flight-recorder overhead ratio on warm dispatch (bound: 1.05).
"""

from repro.experiments.forensics_exp import ext9_forensics


def test_ext9_forensics(benchmark, record_experiment):
    exp = benchmark.pedantic(ext9_forensics, rounds=1, iterations=1)
    record_experiment(exp)
