"""EXP-2: regenerate the Figure 6 listing and its structural properties."""

from repro.experiments.stencil_exp import exp2_listing
from repro.models.stencil import StencilLab


def test_exp2_codegen_listing(benchmark, record_experiment):
    exp = exp2_listing(xs=24, ys=24)
    record_experiment(exp)

    # time the rewrite itself (the "runtime" in runtime binary rewriting)
    lab = StencilLab(xs=24, ys=24)

    def run():
        result = lab.rewrite_apply()
        assert result.ok
        return result.code_size

    size = benchmark.pedantic(run, rounds=3, iterations=1)
    assert size > 0
