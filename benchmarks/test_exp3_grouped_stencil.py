"""EXP-3: coefficient grouping (Sec. V.B)."""

from repro.experiments.stencil_exp import exp3_grouped
from repro.models.stencil import StencilLab


def test_exp3_grouped_stencil(benchmark, record_experiment):
    exp = exp3_grouped(xs=24, ys=24, iters=2)
    record_experiment(exp)

    lab = StencilLab(xs=24, ys=24)
    grouped = lab.rewrite_apply(grouped=True)
    assert grouped.ok

    def run():
        return lab.run_with_apply(grouped.entry, 1, grouped=True).cycles

    cycles = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cycles > 0
