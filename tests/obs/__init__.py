"""Observability (metrics) tests."""
