"""Counter/histogram/registry semantics and snapshot determinism."""

from __future__ import annotations

import json

from repro.obs import Counter, CycleHistogram, Metrics


def test_counter_inc_and_gauge_set():
    c = Counter("x")
    assert c.inc() == 1
    assert c.inc(5) == 6
    c.set(2)
    assert c.value == 2


def test_histogram_power_of_two_buckets():
    h = CycleHistogram("lat")
    for v in (0, 1, 2, 3, 4, 1023, 1024):
        h.record(v)
    # 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 1023 -> 9; 1024 -> 10
    assert h.buckets == {0: 2, 1: 2, 2: 1, 9: 1, 10: 1}
    assert h.count == 7 and h.max_value == 1024
    assert h.mean == (0 + 1 + 2 + 3 + 4 + 1023 + 1024) / 7
    summary = h.summary()
    assert summary["count"] == 7 and summary["buckets"]["10"] == 1


def test_histogram_clamps_negatives_and_floors_floats():
    h = CycleHistogram("lat")
    h.record(-5)
    h.record(2.9)
    assert h.buckets == {0: 1, 1: 1}
    assert h.total == 2


def test_registry_lazy_creation_and_value():
    metrics = Metrics()
    assert metrics.value("never.charged") == 0
    metrics.inc("a.hits")
    metrics.inc("a.hits", 2)
    metrics.set("a.depth", 7)
    metrics.record("a.cycles", 100)
    assert metrics.value("a.hits") == 3
    assert metrics.value("a.depth") == 7
    assert metrics.histogram("a.cycles").count == 1
    assert metrics.counter("a.hits") is metrics.counter("a.hits")


def test_as_dict_sorted_and_snapshot_json_one_line():
    metrics = Metrics()
    metrics.inc("z.last")
    metrics.inc("a.first")
    metrics.record("m.h", 5)
    doc = metrics.as_dict()
    assert list(doc["counters"]) == ["a.first", "z.last"]
    snap = metrics.snapshot_json()
    assert "\n" not in snap
    assert json.loads(snap) == doc


def test_snapshot_is_deterministic_across_charge_orders():
    """Same charges, different order -> byte-identical snapshot (the
    contract the service determinism suite builds on)."""
    m1, m2 = Metrics(), Metrics()
    m1.inc("a")
    m1.inc("b", 2)
    m1.record("h", 9)
    m2.record("h", 9)
    m2.inc("b", 2)
    m2.inc("a")
    assert m1.snapshot_json() == m2.snapshot_json()


# -------------------------------------------------------- registry merge
def test_merge_sums_counters_and_returns_self():
    a, b = Metrics(), Metrics()
    a.inc("hits", 3)
    b.inc("hits", 4)
    b.inc("only.b", 1)
    merged = a.merge(b)
    assert merged is a
    assert a.value("hits") == 7
    assert a.value("only.b") == 1
    assert b.value("hits") == 4, "the source registry is untouched"


def test_merge_gauges_take_the_last_writers_level():
    a, b = Metrics(), Metrics()
    a.set("depth", 9)
    b.set("depth", 2)
    a.merge(b)
    assert a.value("depth") == 2
    # gauge-ness is sticky in either direction: a counter merged onto a
    # gauge (or vice versa) keeps level semantics, never sums
    c, d = Metrics(), Metrics()
    c.set("mixed", 5)
    d.inc("mixed", 3)
    c.merge(d)
    assert c.value("mixed") == 3
    e, f = Metrics(), Metrics()
    e.inc("mixed2", 5)
    f.set("mixed2", 3)
    e.merge(f)
    assert e.value("mixed2") == 3


def test_merge_histograms_equals_single_stream():
    """Bucket-wise histogram merge is exact: merging per-shard
    histograms equals one histogram fed both recording streams."""
    single, left, right = Metrics(), Metrics(), Metrics()
    stream_a = [0, 1, 5, 640, 7, 7]
    stream_b = [2, 5, 1024, 1]
    for v in stream_a + stream_b:
        single.record("lat", v)
    for v in stream_a:
        left.record("lat", v)
    for v in stream_b:
        right.record("lat", v)
    left.merge(right)
    assert left.histogram("lat").summary() == single.histogram("lat").summary()
    assert left.snapshot_json() == single.snapshot_json()


def test_merge_prefix_namespaces_every_incoming_name():
    fabric, shard = Metrics(), Metrics()
    fabric.inc("fabric.requests", 2)
    shard.inc("service.warm_hits", 5)
    shard.record("service.cycles", 100)
    fabric.merge(shard, prefix="fabric.shard0.")
    assert fabric.value("fabric.shard0.service.warm_hits") == 5
    assert fabric.value("service.warm_hits") == 0
    assert fabric.histogram("fabric.shard0.service.cycles").count == 1
    assert fabric.value("fabric.requests") == 2, "local names untouched"


def test_merge_in_fixed_order_is_deterministic():
    """Merging the same shard registries in the same order twice yields
    byte-identical snapshots (the fabric snapshot contract)."""
    def shard_metrics(i):
        m = Metrics()
        m.inc("service.requests", i + 1)
        m.set("service.queue_depth", i)
        m.record("service.cycles", 10 * (i + 1))
        return m

    def build():
        out = Metrics()
        for i in range(3):
            out.merge(shard_metrics(i), prefix=f"fabric.shard{i}.")
        return out.snapshot_json()

    assert build() == build()


def test_merge_counters_into_accumulates():
    metrics = Metrics()
    metrics.inc("hits", 3)
    out = {"hits": 1, "other": 5}
    merged = metrics.merge_counters_into(out)
    assert merged is out
    assert out == {"hits": 4, "other": 5}


# ------------------------------------------------- merge algebra (EXT-9)
def _counter_metrics(pairs) -> Metrics:
    m = Metrics()
    for name, value in pairs:
        m.inc(name, value)
    return m


def test_counter_merge_is_commutative():
    pairs_a = [("hits", 3), ("misses", 1)]
    pairs_b = [("hits", 5), ("sheds", 2)]
    ab = _counter_metrics(pairs_a).merge(_counter_metrics(pairs_b))
    ba = _counter_metrics(pairs_b).merge(_counter_metrics(pairs_a))
    assert ab.snapshot_json() == ba.snapshot_json()


def test_counter_merge_is_associative():
    def fresh():
        return (_counter_metrics([("a", 1)]),
                _counter_metrics([("a", 2), ("b", 4)]),
                _counter_metrics([("b", 8), ("c", 16)]))

    x, y, z = fresh()
    left = x.merge(y).merge(z).snapshot_json()
    x, y, z = fresh()
    y.merge(z)
    right = x.merge(y).snapshot_json()
    assert left == right


def test_empty_registry_is_the_merge_identity():
    loaded = _counter_metrics([("hits", 7), ("misses", 2)])
    loaded.record("cycles", 40)
    before = loaded.snapshot_json()
    assert loaded.merge(Metrics()).snapshot_json() == before
    empty = Metrics()
    empty.merge(loaded)
    assert empty.snapshot_json() == before


def test_histogram_merge_is_exact_bucket_wise_under_prefix():
    """Merging prefixed shard histograms equals one histogram fed every
    sample directly (value-ranged buckets, so per-bucket sums are
    exact)."""
    samples_a = [1, 7, 80, 2000, 80]
    samples_b = [3, 7, 500, 2000, 1_000_000]
    shard_a, shard_b, direct = Metrics(), Metrics(), Metrics()
    for v in samples_a:
        shard_a.record("service.cycles", v)
        direct.record("fabric.all.service.cycles", v)
    for v in samples_b:
        shard_b.record("service.cycles", v)
        direct.record("fabric.all.service.cycles", v)
    fabric = Metrics()
    fabric.merge(shard_a, prefix="fabric.all.")
    fabric.merge(shard_b, prefix="fabric.all.")
    assert fabric.snapshot_json() == direct.snapshot_json()
    merged = fabric.histogram("fabric.all.service.cycles")
    assert merged.count == len(samples_a) + len(samples_b)
