"""Counter/histogram/registry semantics and snapshot determinism."""

from __future__ import annotations

import json

from repro.obs import Counter, CycleHistogram, Metrics


def test_counter_inc_and_gauge_set():
    c = Counter("x")
    assert c.inc() == 1
    assert c.inc(5) == 6
    c.set(2)
    assert c.value == 2


def test_histogram_power_of_two_buckets():
    h = CycleHistogram("lat")
    for v in (0, 1, 2, 3, 4, 1023, 1024):
        h.record(v)
    # 0,1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 1023 -> 9; 1024 -> 10
    assert h.buckets == {0: 2, 1: 2, 2: 1, 9: 1, 10: 1}
    assert h.count == 7 and h.max_value == 1024
    assert h.mean == (0 + 1 + 2 + 3 + 4 + 1023 + 1024) / 7
    summary = h.summary()
    assert summary["count"] == 7 and summary["buckets"]["10"] == 1


def test_histogram_clamps_negatives_and_floors_floats():
    h = CycleHistogram("lat")
    h.record(-5)
    h.record(2.9)
    assert h.buckets == {0: 1, 1: 1}
    assert h.total == 2


def test_registry_lazy_creation_and_value():
    metrics = Metrics()
    assert metrics.value("never.charged") == 0
    metrics.inc("a.hits")
    metrics.inc("a.hits", 2)
    metrics.set("a.depth", 7)
    metrics.record("a.cycles", 100)
    assert metrics.value("a.hits") == 3
    assert metrics.value("a.depth") == 7
    assert metrics.histogram("a.cycles").count == 1
    assert metrics.counter("a.hits") is metrics.counter("a.hits")


def test_as_dict_sorted_and_snapshot_json_one_line():
    metrics = Metrics()
    metrics.inc("z.last")
    metrics.inc("a.first")
    metrics.record("m.h", 5)
    doc = metrics.as_dict()
    assert list(doc["counters"]) == ["a.first", "z.last"]
    snap = metrics.snapshot_json()
    assert "\n" not in snap
    assert json.loads(snap) == doc


def test_snapshot_is_deterministic_across_charge_orders():
    """Same charges, different order -> byte-identical snapshot (the
    contract the service determinism suite builds on)."""
    m1, m2 = Metrics(), Metrics()
    m1.inc("a")
    m1.inc("b", 2)
    m1.record("h", 9)
    m2.record("h", 9)
    m2.inc("b", 2)
    m2.inc("a")
    assert m1.snapshot_json() == m2.snapshot_json()


def test_merge_counters_into_accumulates():
    metrics = Metrics()
    metrics.inc("hits", 3)
    out = {"hits": 1, "other": 5}
    merged = metrics.merge_counters_into(out)
    assert merged is out
    assert out == {"hits": 4, "other": 5}
