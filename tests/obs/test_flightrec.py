"""Flight recorder: bounded rings, global ordering, disabled cost."""

from __future__ import annotations

import pytest

from repro.obs import CHANNELS, FlightRecorder


def test_channels_are_the_four_architectural_layers():
    assert CHANNELS == ("machine", "rewrite", "service", "fabric")


def test_record_returns_monotonic_global_sequence_numbers():
    rec = FlightRecorder()
    seqs = [rec.record(ch, "e") for ch in CHANNELS for _ in range(3)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_rings_are_bounded_and_drops_are_counted():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record("service", "tick", {"i": i})
    assert len(rec) == 4
    assert rec.dropped["service"] == 6
    assert rec.dropped["rewrite"] == 0
    held = [r["data"]["i"] for r in rec.tail("service")]
    assert held == [6, 7, 8, 9], "a ring keeps the newest records"


def test_tail_interleaves_channels_by_sequence():
    rec = FlightRecorder()
    rec.record("service", "a")
    rec.record("rewrite", "b")
    rec.record("service", "c")
    rows = rec.tail()
    assert [r["event"] for r in rows] == ["a", "b", "c"]
    assert [r["channel"] for r in rows] == ["service", "rewrite", "service"]
    assert [r["seq"] for r in rows] == sorted(r["seq"] for r in rows)


def test_tail_limit_keeps_the_newest_records_after_interleaving():
    rec = FlightRecorder()
    for i in range(6):
        rec.record(CHANNELS[i % len(CHANNELS)], f"e{i}")
    rows = rec.tail(limit=2)
    assert [r["event"] for r in rows] == ["e4", "e5"]


def test_disabled_recorder_journals_nothing_and_returns_minus_one():
    rec = FlightRecorder(enabled=False)
    assert rec.record("service", "e", {"x": 1}) == -1
    assert len(rec) == 0
    assert rec.tail() == []


def test_payload_defaults_to_empty_dict():
    rec = FlightRecorder()
    rec.record("machine", "e")
    assert rec.tail("machine")[0]["data"] == {}


def test_clear_drops_records_but_never_reissues_sequence_numbers():
    rec = FlightRecorder(capacity=2)
    for _ in range(5):
        rec.record("fabric", "e")
    rec.clear()
    assert len(rec) == 0
    assert rec.dropped["fabric"] == 0
    assert rec.record("fabric", "e") == 6


def test_unknown_channel_is_a_bug_not_a_new_ring():
    rec = FlightRecorder()
    with pytest.raises(KeyError):
        rec.record("sevrice", "typo")


def test_capacity_is_validated():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_stats_reports_occupancy_and_drops():
    rec = FlightRecorder(capacity=2)
    for _ in range(3):
        rec.record("rewrite", "e")
    stats = rec.stats()
    assert stats["seq"] == 3
    assert stats["per_channel"]["rewrite"] == {"held": 2, "dropped": 1}
    assert stats["per_channel"]["machine"] == {"held": 0, "dropped": 0}


def test_two_identical_runs_journal_identical_tails():
    def run():
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record(CHANNELS[i % 3], "step", {"i": i, "v": i * i})
        return rec.tail()

    assert run() == run()
