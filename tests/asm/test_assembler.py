"""Text assembler, builder, and disassembler tests."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError
from repro.asm.assembler import assemble, parse_operand
from repro.asm.builder import Builder
from repro.asm.disassembler import disassemble
from repro.isa.encoding import iter_decode
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Label, Mem, Reg
from repro.isa.registers import GPR, XMM


def test_parse_registers():
    assert parse_operand("rax") == Reg(GPR.RAX)
    assert parse_operand("XMM3") == FReg(XMM.XMM3)


def test_parse_immediates():
    assert parse_operand("42") == Imm(42)
    assert parse_operand("-1") == Imm(-1)
    assert parse_operand("0x10") == Imm(16)


def test_parse_mem_forms():
    assert parse_operand("[rdi]") == Mem(GPR.RDI)
    assert parse_operand("[rdi+8]") == Mem(GPR.RDI, disp=8)
    assert parse_operand("[rdi + rcx*8 - 16]") == Mem(GPR.RDI, GPR.RCX, 8, -16)
    assert parse_operand("[0x615100]") == Mem(disp=0x615100)
    assert parse_operand("[rbp+rsi]") == Mem(GPR.RBP, GPR.RSI, 1, 0)


def test_parse_label():
    assert parse_operand("loop_top") == Label("loop_top")


def test_parse_errors():
    for bad in ("", "[rax*3]", "[rax+rbx+rcx]", "@@"):
        with pytest.raises(AssemblerError):
            parse_operand(bad)


def test_assemble_loop_program():
    src = """
    ; simple countdown
    entry:
        mov rcx, 3
    top:
        dec rcx
        jne top
        ret
    """
    code, labels = assemble(src, base_addr=0x100)
    decoded = list(iter_decode(code, 0x100))
    assert [i.op for i in decoded] == [Op.MOV, Op.DEC, Op.JNE, Op.RET]
    assert decoded[2].operands == (Imm(labels["top"]),)


def test_assemble_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("frobnicate rax, 1")


def test_assemble_external_symbol():
    code, _ = assemble("call helper\nret", extra_labels={"helper": 0x8000})
    decoded = list(iter_decode(code, 0))
    assert decoded[0].operands == (Imm(0x8000),)


def test_builder_mnemonic_sugar_and_coercion():
    b = Builder()
    b.mov(GPR.RAX, 7)
    b.addsd(XMM.XMM0, Mem(GPR.RDI, disp=8))
    b.label("out")
    b.jmp("out")
    code, labels = b.assemble(0)
    decoded = list(iter_decode(code, 0))
    assert decoded[0].operands == (Reg(GPR.RAX), Imm(7))
    assert decoded[2].operands == (Imm(labels["out"]),)


def test_builder_rejects_bool_operand():
    b = Builder()
    with pytest.raises(AssemblerError):
        b.mov(GPR.RAX, True)


def test_builder_fresh_labels_unique():
    b = Builder()
    assert b.fresh_label() != b.fresh_label()


def test_disassemble_roundtrips_text():
    src = "mov rax, 1\nadd rax, [rdi+rcx*8+16]\nret"
    code, _ = assemble(src)
    listing = disassemble(code, 0)
    assert "i-01" in listing and "mov rax, 1" in listing
    assert "[rdi+rcx*8+16]" in listing
    assert "ret" in listing


def test_disassemble_resolves_symbols():
    code, _ = assemble("call fn", extra_labels={"fn": 0x9000})
    listing = disassemble(code, 0, symbols={0x9000: "apply"})
    assert "apply" in listing


def test_assembler_disassembler_roundtrip_reassembles():
    src = """
    mov rcx, 10
    top:
    add rax, rcx
    dec rcx
    jne top
    ret
    """
    code, _ = assemble(src, base_addr=0x2000)
    listing = disassemble(code, 0x2000, with_addresses=False)
    # strip the i-NN prefixes and re-assemble; jump targets are absolute hex
    lines = []
    for line in listing.splitlines():
        body = line.split(":", 1)[1].strip()
        body = body.replace("jne 0x", "jne L0x").replace("L0x", "target")  # symbolic
        lines.append(body)
    # just check the listing decodes to same ops
    ops1 = [i.op for i in iter_decode(code, 0x2000)]
    assert ops1 == [Op.MOV, Op.ADD, Op.DEC, Op.JNE, Op.RET]
