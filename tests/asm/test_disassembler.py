"""Disassembler golden tests (Figure-6-style output)."""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble, format_instruction, format_listing
from repro.isa.encoding import iter_decode
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Mem, Reg
from repro.isa.registers import GPR, XMM


def test_golden_listing():
    src = """
    mov rax, 42
    movsd xmm1, [0x615100]
    mulsd xmm1, xmm0
    add rax, [rbp-8]
    ret
    """
    code, _ = assemble(src, base_addr=0x1000)
    listing = disassemble(code, 0x1000)
    lines = listing.splitlines()
    assert lines[0] == "i-01: 0x1000: mov rax, 42"
    assert "movsd xmm1, [0x615100]" in lines[1]
    assert "mulsd xmm1, xmm0" in lines[2]
    assert "[rbp-8]" in lines[3]
    assert lines[4].endswith("ret")


def test_symbols_resolve_in_calls_and_absolute_loads():
    insn = ins(Op.CALL, Imm(0x9000))
    text = format_instruction(insn, symbols={0x9000: "apply"})
    assert text == "call apply (0x9000)"
    load = ins(Op.MOVSD, FReg(XMM.XMM0), Mem(disp=0x200010))
    text = format_instruction(load, symbols={0x200010: "__lit_bff0"})
    assert "__lit_bff0" in text


def test_listing_without_addresses():
    code, _ = assemble("nop\nret", base_addr=0)
    listing = disassemble(code, 0, with_addresses=False)
    assert listing.splitlines() == ["i-01: nop", "i-02: ret"]


def test_negative_displacement_formatting():
    insn = ins(Op.MOV, Reg(GPR.RAX), Mem(GPR.RSP, disp=-40))
    assert format_instruction(insn) == "mov rax, [rsp-40]"


def test_scaled_index_formatting():
    insn = ins(Op.MOV, Reg(GPR.RAX), Mem(GPR.RDI, GPR.RCX, 8, 16))
    assert format_instruction(insn) == "mov rax, [rdi+rcx*8+16]"


def test_format_listing_numbers_sequentially():
    insns = [ins(Op.NOP), ins(Op.NOP), ins(Op.RET)]
    lines = format_listing(insns, with_addresses=False).splitlines()
    assert [l.split(":")[0] for l in lines] == ["i-01", "i-02", "i-03"]


def test_every_opcode_formats_without_crashing():
    # build one instruction per opcode with plausible operands and make
    # sure encode -> decode -> format holds together
    from repro.isa.encoding import encode, decode
    from repro.isa.opcodes import OpClass, op_info

    samples = []
    for op in Op:
        cls = op_info(op).opclass
        if cls in (OpClass.RET, OpClass.NOP, OpClass.HLT):
            samples.append(ins(op))
        elif cls in (OpClass.JMP, OpClass.JCC, OpClass.CALL):
            if op in (Op.JMPI, Op.CALLI):
                samples.append(ins(op, Reg(GPR.RAX)))
            else:
                samples.append(ins(op, Imm(0x2000)))
        elif cls in (OpClass.PUSH, OpClass.POP, OpClass.DIV, OpClass.SETCC):
            samples.append(ins(op, Reg(GPR.RCX)))
        elif op in (Op.NEG, Op.NOT, Op.INC, Op.DEC):
            samples.append(ins(op, Reg(GPR.RAX)))
        elif cls in (OpClass.FMOV, OpClass.FALU, OpClass.FDIV, OpClass.FCMP,
                     OpClass.VMOV, OpClass.VALU):
            samples.append(ins(op, FReg(XMM.XMM1), FReg(XMM.XMM2)))
        elif op is Op.CVTSI2SD:
            samples.append(ins(op, FReg(XMM.XMM0), Reg(GPR.RAX)))
        elif op is Op.CVTTSD2SI:
            samples.append(ins(op, Reg(GPR.RAX), FReg(XMM.XMM0)))
        elif op is Op.MOVQ:
            samples.append(ins(op, Reg(GPR.RAX), FReg(XMM.XMM0)))
        elif cls is OpClass.LEA:
            samples.append(ins(op, Reg(GPR.RAX), Mem(GPR.RSP, disp=8)))
        else:
            samples.append(ins(op, Reg(GPR.RAX), Imm(3)))
    for insn in samples:
        out = decode(encode(insn, 0x1000), 0x1000)
        text = format_instruction(out)
        assert text and str(out.op) in text
