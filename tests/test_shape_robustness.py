"""Shape robustness: the EXP-1 ratios the reproduction claims must be
insensitive to the workload size (the paper ran 500², we run 24² — this
is the test that justifies the substitution in DESIGN.md §2)."""

from __future__ import annotations

import pytest

from repro.models.stencil import StencilLab


def measure_ratios(xs: int) -> dict[str, float]:
    lab = StencilLab(xs=xs, ys=xs)
    generic = lab.run_generic(1).cycles
    out = {"generic": 1.0}
    out["manual"] = lab.run_manual(1).cycles / generic
    rewritten = lab.rewrite_apply()
    assert rewritten.ok
    out["rewritten"] = lab.run_with_apply(rewritten.entry, 1).cycles / generic
    out["inlined"] = lab.run_compiler_inlined(1).cycles / generic
    return out


@pytest.mark.slow
def test_exp1_ratios_are_size_insensitive():
    small = measure_ratios(12)
    large = measure_ratios(48)   # 16x the points of the small run
    for key in ("manual", "rewritten", "inlined"):
        assert abs(small[key] - large[key]) < 0.06, (key, small[key], large[key])
    # and the orderings hold at both sizes
    for m in (small, large):
        assert m["inlined"] < m["manual"] <= m["rewritten"] < 1.0
