"""Cross-module integration tests: the full stack working together the
way a downstream user would drive it."""

from __future__ import annotations

import math

from repro import Machine
from repro.core import (
    BREW_KNOWN, BREW_PTR_TO_KNOWN, brew_init_conf, brew_rewrite, brew_setpar,
)
from repro.core.dispatch import specialize_hot_param
from repro.models.stencil import StencilLab, StencilSpec
from repro.profiling import CallCounter, ValueProfiler


def test_hotspot_driven_rewriting_workflow():
    """Profile -> find hotspot -> rewrite it -> swap the pointer."""
    m = Machine()
    m.load("""
    noinline double kernel(double *v, long n, long stride) {
        double t = 0.0;
        for (long i = 0; i < n; i++) t = t + v[i * stride];
        return t;
    }
    noinline double driver(double *v, long n, long reps) {
        double acc = 0.0;
        for (long r = 0; r < reps; r++)
            acc = acc + kernel(v, n, 1);
        return acc;
    }
    """)
    n = 32
    v = m.image.malloc(n * 8)
    for i in range(n):
        m.memory.write_f64(v + 8 * i, float(i))

    counter = CallCounter(m.cpu).attach()
    profiler = ValueProfiler(m.cpu).attach()
    baseline = m.call("driver", v, n, 4)
    profiler.detach()
    counter.detach()

    hot_addr, _ = counter.hotspots(1)[0]
    assert hot_addr == m.symbol("kernel")
    spec = specialize_hot_param(
        m, hot_addr, profiler.profile(hot_addr), param=3,
        example_args=(v, n, 1),
    )
    assert spec is not None and spec.guard_value == 1
    direct = m.call(spec.entry, v, n, 1)
    plain = m.call("kernel", v, n, 1)
    assert math.isclose(direct.float_return, plain.float_return)
    assert direct.cycles < plain.cycles


def test_many_rewrites_coexist():
    """Dozens of rewrites in one image: symbols, code space, correctness."""
    m = Machine()
    m.load("noinline long f(long a, long b) { return a * b + a - b; }")
    entries = []
    for k in range(40):
        conf = brew_init_conf()
        brew_setpar(conf, 2, BREW_KNOWN)
        result = brew_rewrite(m, conf, "f", 0, k)
        assert result.ok, result.message
        entries.append((k, result.entry))
    assert len({e for _, e in entries}) == 40
    for k, entry in entries:
        for a in (0, 3, -5):
            assert m.call(entry, a, k).int_return == a * k + a - k


def test_rewrite_of_rewrite_chain_deepens_specialization():
    m = Machine()
    m.load("""
    noinline double poly(double x, double a, double b, double c) {
        return (a * x + b) * x + c;
    }
    """)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r1 = brew_rewrite(m, conf, "poly", 0.0, 2.0, 0.0, 0.0)
    assert r1.ok
    conf2 = brew_init_conf()
    brew_setpar(conf2, 3, BREW_KNOWN)
    r2 = brew_rewrite(m, conf2, r1.entry, 0.0, 0.0, 3.0, 0.0)
    assert r2.ok
    conf3 = brew_init_conf()
    brew_setpar(conf3, 4, BREW_KNOWN)
    r3 = brew_rewrite(m, conf3, r2.entry, 0.0, 0.0, 0.0, 4.0)
    assert r3.ok
    for x in (0.0, 1.0, -2.5):
        want = (2.0 * x + 3.0) * x + 4.0
        assert math.isclose(m.call(r3.entry, x).float_return, want)
    # each stage folds more: cycles decrease monotonically
    c0 = m.call("poly", 1.0, 2.0, 3.0, 4.0).cycles
    c3 = m.call(r3.entry, 1.0).cycles
    assert c3 < c0


def test_stencil_respecialization_on_new_pattern():
    """The library story end to end: new stencil arrives at runtime,
    library re-runs brew_rewrite, answers stay oracle-exact."""
    lab = StencilLab(xs=12, ys=12)
    for spec in (StencilSpec.five_point(), StencilSpec.nine_point()):
        lab.spec = spec
        lab.machine.image.poke(lab.s_addr, spec.pack())
        result = lab.rewrite_apply()
        assert result.ok, result.message
        lab.run_with_apply(result.entry, 1)
        got = lab.read_matrix(lab.final_matrix)
        lab.reset_matrices()
        expected = lab.reference_sweep(lab.read_matrix(lab.m1))
        assert all(
            math.isclose(e, g, rel_tol=1e-12, abs_tol=1e-12)
            for e, g in zip(expected, got)
        )


def test_cross_unit_rewriting():
    """Rewrite a function whose callee lives in a different compilation
    unit (the 'libraries available only in binary form' argument)."""
    m = Machine()
    m.load("noinline long lib_op(long x, long k) { return x * k; }", unit="vendor")
    m.load("""
    extern long lib_op(long x, long k);
    noinline long app(long x) { return lib_op(x, 7) + 1; }
    """, unit="app")
    result = brew_rewrite(m, brew_init_conf(), "app", 0)
    assert result.ok, result.message
    assert result.stats.inlined_calls >= 1  # inlined across units, binary-only
    assert m.call(result.entry, 6).int_return == 43


def test_memory_hook_composes_with_specialization():
    m = Machine()
    m.load("""
    struct Cfg { long stride; };
    noinline double pick(double *v, struct Cfg *c, long i) {
        return v[i * c->stride];
    }
    """)
    v = m.image.malloc(64 * 8)
    for i in range(64):
        m.memory.write_f64(v + 8 * i, float(i))
    cfg = m.image.malloc(8)
    m.memory.write_u64(cfg, 2)
    seen = []
    hook = m.register_host_function("spy", lambda cpu: seen.append(cpu.regs[7]))
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    conf.memory_hook = hook
    result = brew_rewrite(m, conf, "pick", v, cfg, 0)
    assert result.ok, result.message
    out = m.call(result.entry, v, cfg, 5)
    assert out.float_return == 10.0         # stride folded to 2
    assert v + 80 in seen                   # the data access observed
