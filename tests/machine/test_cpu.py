"""Interpreter tests using hand-assembled programs."""

from __future__ import annotations

import pytest

from repro.asm.assembler import assemble
from repro.errors import CpuError
from repro.isa.costs import CostModel
from repro.machine.cpu import CPU
from repro.machine.image import Image


def load(image: Image, name: str, src: str, extra: dict[str, int] | None = None) -> int:
    # two-phase: reserve the address, then assemble with the final base
    probe, _ = assemble(src, base_addr=0, extra_labels=dict(extra or {}, **image.symbols))
    addr = image.add_function(name, b"\x00" * len(probe))
    code, _ = assemble(src, base_addr=addr, extra_labels=dict(extra or {}, **image.symbols))
    image.poke(addr, code)
    return addr


@pytest.fixture
def machine():
    image = Image()
    return image, CPU(image)


def test_return_constant(machine):
    image, cpu = machine
    load(image, "f", "mov rax, 42\nret")
    assert cpu.run("f").int_return == 42


def test_arguments_in_abi_registers(machine):
    image, cpu = machine
    load(image, "add2", "mov rax, rdi\nadd rax, rsi\nret")
    assert cpu.run("add2", 40, 2).int_return == 42


def test_float_arguments_and_return(machine):
    image, cpu = machine
    load(image, "fmul", "mulsd xmm0, xmm1\nret")
    assert cpu.run("fmul", 3.0, 4.0).float_return == 12.0


def test_mixed_int_float_args(machine):
    image, cpu = machine
    # double f(double a, long b): return a (int arg must not disturb xmm0)
    load(image, "pick", "ret")
    result = cpu.run("pick", 2.5, 7)
    assert result.float_return == 2.5


def test_loop_countdown(machine):
    image, cpu = machine
    load(
        image,
        "sum10",
        """
        mov rax, 0
        mov rcx, 10
        top:
        add rax, rcx
        dec rcx
        jne top
        ret
        """,
    )
    assert cpu.run("sum10").int_return == 55


def test_memory_load_store(machine):
    image, cpu = machine
    buf = image.malloc(64)
    load(
        image,
        "store_load",
        """
        mov [rdi+8], rsi
        mov rax, [rdi+8]
        ret
        """,
    )
    assert cpu.run("store_load", buf, 1234).int_return == 1234


def test_scaled_indexing(machine):
    image, cpu = machine
    buf = image.malloc(64)
    for i in range(4):
        image.memory.write_u64(buf + 8 * i, 100 + i)
    load(image, "idx", "mov rax, [rdi+rsi*8]\nret")
    assert cpu.run("idx", buf, 3).int_return == 103


def test_call_and_ret(machine):
    image, cpu = machine
    load(image, "callee", "mov rax, 7\nret")
    load(image, "caller", "call callee\nadd rax, 1\nret")
    assert cpu.run("caller").int_return == 8


def test_indirect_call_through_register(machine):
    image, cpu = machine
    load(image, "callee", "mov rax, 9\nret")
    load(image, "caller", "calli rdi\nret")
    assert cpu.run("caller", image.symbol("callee")).int_return == 9


def test_push_pop(machine):
    image, cpu = machine
    load(image, "f", "push rdi\npop rax\nret")
    assert cpu.run("f", 31337).int_return == 31337


def test_idiv(machine):
    image, cpu = machine
    load(image, "divmod", "mov rax, rdi\nidiv rsi\nret")
    result = cpu.run("divmod", -7 & (2**64 - 1), 2)
    assert result.int_return == -3
    assert cpu.regs[2] == (2**64 - 1)  # rdx = remainder -1


def test_setcc(machine):
    image, cpu = machine
    load(image, "less", "cmp rdi, rsi\nsetl rax\nret")
    assert cpu.run("less", -1 & (2**64 - 1), 5).int_return == 1
    assert cpu.run("less", 5, 5).int_return == 0


def test_float_compare_branch(machine):
    image, cpu = machine
    load(
        image,
        "fmax",
        """
        ucomisd xmm0, xmm1
        ja keep
        movsd xmm0, xmm1
        keep:
        ret
        """,
    )
    assert cpu.run("fmax", 1.0, 2.0).float_return == 2.0
    assert cpu.run("fmax", 3.0, 2.0).float_return == 3.0


def test_cvt_roundtrip(machine):
    image, cpu = machine
    load(image, "toint", "cvttsd2si rax, xmm0\nret")
    assert cpu.run("toint", 41.9).int_return == 41
    load(image, "tofloat", "cvtsi2sd xmm0, rdi\nret")
    assert cpu.run("tofloat", -3 & (2**64 - 1)).float_return == -3.0


def test_movq_bit_moves(machine):
    image, cpu = machine
    load(image, "bits", "movq rax, xmm0\nmovq xmm1, rax\nmovsd xmm0, xmm1\nret")
    assert cpu.run("bits", 2.5).float_return == 2.5


def test_packed_ops(machine):
    image, cpu = machine
    buf = image.malloc(32)
    image.memory.write_f64(buf, 1.0)
    image.memory.write_f64(buf + 8, 2.0)
    load(
        image,
        "vsum",
        """
        movupd xmm0, [rdi]
        movupd xmm1, [rdi]
        addpd xmm0, xmm1
        haddpd xmm0, xmm0
        ret
        """,
    )
    # lanes (2,4) -> haddpd gives 6 in lane 0
    assert cpu.run("vsum", buf).float_return == 6.0


def test_host_function(machine):
    image, cpu = machine
    calls = []

    def host(c):
        calls.append(c.regs[7])  # rdi
        c.regs[0] = 99

    addr = image.alloc_host_slot("host_fn")
    cpu.host_functions[addr] = host
    load(image, "caller", "mov rdi, 5\ncall host_fn\nret")
    assert cpu.run("caller").int_return == 99
    assert calls == [5]


def test_call_hooks_observe_targets(machine):
    image, cpu = machine
    seen = []
    cpu.call_hooks.append(lambda c, target: seen.append(target))
    callee = load(image, "callee", "ret")
    load(image, "caller", "call callee\nret")
    cpu.run("caller")
    assert seen == [callee]


def test_max_steps_guard(machine):
    image, cpu = machine
    load(image, "spin", "top:\njmp top")
    with pytest.raises(CpuError):
        cpu.run("spin", max_steps=100)


def test_hlt_stops(machine):
    image, cpu = machine
    load(image, "h", "mov rax, 5\nhlt")
    assert cpu.run("h").int_return == 5


def test_cycle_accounting_matches_cost_model(machine):
    image, cpu = machine
    costs = CostModel()
    load(image, "f", "mov rax, 1\nadd rax, 2\nret")
    result = cpu.run("f")
    # mov(1) + add(1) + ret(6 + load 4) + initial sentinel store is outside the loop
    expected = costs.mov + costs.alu + costs.ret + costs.load
    assert result.cycles == expected


def test_remote_segment_surcharge(machine):
    image, cpu = machine
    seg = image.map_remote_node(0, 0x1000, extra_cost=150)
    image.memory.write_u64(seg.base, 77)
    load(image, "f", "mov rax, [rdi]\nret")
    local_buf = image.malloc(8)
    image.memory.write_u64(local_buf, 77)
    remote = cpu.run("f", seg.base)
    local = cpu.run("f", local_buf)
    assert remote.int_return == local.int_return == 77
    assert remote.cycles == local.cycles + 150
    assert remote.perf.remote_accesses == 1


def test_branch_counters(machine):
    image, cpu = machine
    load(
        image,
        "f",
        """
        mov rcx, 3
        top:
        dec rcx
        jne top
        ret
        """,
    )
    result = cpu.run("f")
    assert result.perf.branches == 3
    assert result.perf.taken_branches == 2
