"""Unit tests for the unreliable interconnect (machine.link)."""

from __future__ import annotations

import struct

import pytest

from repro.errors import FAILURE_REASONS
from repro.machine.link import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN,
    CircuitBreaker, FaultProfile, Link, TransferManager,
)
from repro.machine.vm import Machine

SOURCE = "noinline long idle(long x) { return x; }"


@pytest.fixture()
def setup():
    m = Machine()
    m.load(SOURCE)
    src = m.image.malloc(256)
    dst = m.image.malloc(256)
    m.image.poke(src, bytes(range(256)))
    return m, src, dst


def _manager(machine, **kw):
    return TransferManager(machine, **kw)


# ------------------------------------------------------------------ Link
def test_clean_link_delivers_with_latency():
    link = Link(1, seed=0)
    attempt = link.transfer(b"\x01" * 64)
    assert attempt.status == "ok"
    assert attempt.payload == b"\x01" * 64
    assert attempt.cycles == link.startup_cycles + 8 * link.per_element_cycles
    assert link.delivered == link.attempts == 1


def test_link_faults_are_seed_deterministic():
    profile = FaultProfile.uniform(0.4)
    a = Link(2, faults=profile, seed=9)
    b = Link(2, faults=profile, seed=9)
    seq_a = [a.transfer(b"x" * 32).status for _ in range(40)]
    seq_b = [b.transfer(b"x" * 32).status for _ in range(40)]
    assert seq_a == seq_b
    assert set(seq_a) - {"ok"}, "profile at 0.4 should produce faults"


def test_corrupt_attempt_damages_payload_but_keeps_length():
    link = Link(1, seed=3)
    payload = bytes(64)
    attempt = link.force_fault(payload, "corrupt")
    assert attempt.status == "corrupt"
    assert attempt.payload is not None and len(attempt.payload) == 64
    assert attempt.payload != payload
    assert attempt.cycles == link.latency(64)


def test_drop_and_delay_burn_the_timeout():
    link = Link(1, seed=0)
    for status in ("drop", "delay"):
        attempt = link.force_fault(b"abc", status)
        assert attempt.payload is None
        assert attempt.cycles == link.timeout_cycles


def test_partition_latches_and_heals():
    link = Link(1, faults=FaultProfile(partition_attempts=3), seed=0)
    link.force_fault(b"x", "partition")
    assert link.partitioned
    # subsequent organic attempts keep failing while latched
    assert link.transfer(b"x").status == "partition"
    assert link.transfer(b"x").status == "partition"
    assert not link.partitioned  # 3 attempts consumed the latch
    assert link.transfer(b"x").status == "ok"
    link.force_fault(b"x", "partition")
    link.heal()
    assert not link.partitioned


# --------------------------------------------------------- CircuitBreaker
def test_breaker_three_state_machine():
    br = CircuitBreaker(failure_threshold=2, cooldown_epochs=3)
    assert br.state == BREAKER_CLOSED and br.allow(0)
    br.record_failure(0)
    assert br.state == BREAKER_CLOSED
    br.record_failure(0)
    assert br.state == BREAKER_OPEN and br.trips == 1
    assert not br.allow(1) and not br.allow(2)
    assert br.allow(3)  # cooldown passed -> half-open probe
    assert br.state == BREAKER_HALF_OPEN
    br.record_failure(3)  # failed probe re-opens immediately
    assert br.state == BREAKER_OPEN and br.trips == 2
    assert br.allow(6)
    br.record_success()
    assert br.state == BREAKER_CLOSED and br.consecutive_failures == 0


# -------------------------------------------------------- TransferManager
def test_clean_transfer_verified_and_charged(setup):
    m, src, dst = setup
    tm = _manager(m)
    before = m.cpu.perf.cycles
    report = tm.transfer(1, src, dst, 128)
    assert report.ok and report.attempts == 1
    assert report.statuses == ("ok",)
    assert m.image.peek(dst, 128) == m.image.peek(src, 128)
    assert m.cpu.perf.cycles - before == report.cycles > 0
    assert tm.stats()["completed"] == 1


def test_retry_recovers_from_transient_fault(setup):
    m, src, dst = setup
    tm = _manager(m)
    # deterministic transient: patch one forced corrupt ahead of delivery
    link = tm.link_for(1)
    original = link.transfer
    state = {"first": True}

    def flaky(payload):
        if state["first"]:
            state["first"] = False
            return link.force_fault(payload, "corrupt")
        return original(payload)

    link.transfer = flaky
    report = tm.transfer(1, src, dst, 64)
    assert report.ok and report.attempts == 2
    assert report.statuses == ("corrupt", "ok")
    assert tm.stats()["retries"] == 1
    assert m.image.peek(dst, 64) == m.image.peek(src, 64)


def test_terminal_failure_tags_documented_reason_and_leaves_dst_alone(setup):
    m, src, dst = setup
    sentinel = b"\xee" * 64
    m.image.poke(dst, sentinel)
    tm = _manager(m, faults=FaultProfile(corrupt=1.0), seed=4)
    report = tm.transfer(1, src, dst, 64)
    assert not report.ok
    assert report.attempts == tm.max_attempts
    assert report.reason == "link-corrupt"
    assert report.reason in FAILURE_REASONS
    assert m.image.peek(dst, 64) == sentinel, "corrupt bytes must never land"


def test_backoff_grows_exponentially(setup):
    m, _, _ = setup
    tm = _manager(m, backoff_base_cycles=100, backoff_factor=2.0,
                  backoff_jitter=0.0)
    assert tm._backoff_cycles(1) == 100
    assert tm._backoff_cycles(2) == 200
    assert tm._backoff_cycles(3) == 400
    jittered = _manager(m, backoff_base_cycles=100, backoff_jitter=0.5)
    assert 100 <= jittered._backoff_cycles(1) <= 150


def test_breaker_opens_fast_fails_then_reprobes(setup):
    m, src, dst = setup
    tm = _manager(m, faults=FaultProfile(drop=1.0), seed=2,
                  breaker_threshold=2, breaker_cooldown_epochs=2)
    assert not tm.transfer(1, src, dst, 64).ok
    assert not tm.transfer(1, src, dst, 64).ok
    assert tm.breaker_state(1) == BREAKER_OPEN
    rejected = tm.transfer(1, src, dst, 64)
    assert rejected.statuses == ("breaker-open",)
    assert rejected.attempts == 0 and rejected.cycles == 0
    assert rejected.reason == "link-partition"
    assert tm.stats()["rejected"] == 1
    # heal the network, wait out the cooldown: the probe closes it
    tm.set_faults(FaultProfile())
    tm.advance_epoch()
    tm.advance_epoch()
    report = tm.transfer(1, src, dst, 64)
    assert report.ok
    assert tm.breaker_state(1) == BREAKER_CLOSED


def test_managers_with_same_seed_replay_identically(setup):
    m, src, dst = setup
    outcomes = []
    for _ in range(2):
        tm = _manager(m, faults=FaultProfile.uniform(0.3), seed=77)
        outcomes.append(tuple(
            tm.transfer(1 + (i % 3), src, dst, 64).statuses for i in range(12)
        ))
    assert outcomes[0] == outcomes[1]


def test_stats_fault_counts_track_statuses(setup):
    m, src, dst = setup
    tm = _manager(m, faults=FaultProfile(delay=1.0), seed=0, max_attempts=3)
    report = tm.transfer(2, src, dst, 64)
    assert not report.ok and report.reason == "link-delay"
    stats = tm.stats()
    assert stats["fault_delay"] == 3
    assert stats["attempts"] == 3 and stats["retries"] == 2
    assert stats["failures"] == 1 and stats["transfers"] == 1
