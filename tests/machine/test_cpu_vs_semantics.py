"""Property test: the interpreter's per-instruction behaviour matches
:mod:`repro.isa.semantics` exactly — the shared-semantics claim the
tracer's correctness rests on."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.encoding import encode
from repro.isa.flags import Flag
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Reg
from repro.isa.registers import GPR, XMM
from repro.isa import semantics as S
from repro.machine.cpu import CPU
from repro.machine.image import Image

_BINOPS = [Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.SHL, Op.SHR, Op.SAR]
_SCRATCH = [GPR.RAX, GPR.RCX, GPR.RDX, GPR.RSI]

ints = st.integers(min_value=0, max_value=2**64 - 1)


def run_one(insn, setup) -> CPU:
    image = Image()
    code = encode(insn, 0) + encode(ins(Op.HLT), len(encode(insn, 0)))
    addr = image.add_function("t", code)
    cpu = CPU(image)
    setup(cpu)
    cpu.pc = addr
    cpu._loop(10)
    return cpu


@given(op=st.sampled_from(_BINOPS), a=ints, b=ints,
       dst=st.sampled_from(_SCRATCH), src=st.sampled_from(_SCRATCH))
@settings(max_examples=150)
def test_int_binop_reg_reg_matches_semantics(op, a, b, dst, src):
    insn = ins(op, Reg(dst), Reg(src))

    def setup(cpu):
        cpu.regs[dst] = a
        cpu.regs[src] = b

    cpu = run_one(insn, setup)
    lhs = a if dst != src else b
    expected, flags = S.int_binop(op, lhs if dst != src else b, b)
    if dst == src:
        expected, flags = S.int_binop(op, b, b)
    assert cpu.regs[dst] == expected
    for f in Flag:
        assert cpu.flags[f] == flags[f], f


@given(op=st.sampled_from(_BINOPS), a=ints,
       imm=st.integers(min_value=-(2**31), max_value=2**31 - 1))
@settings(max_examples=150)
def test_int_binop_reg_imm_matches_semantics(op, a, imm):
    insn = ins(op, Reg(GPR.RAX), Imm(imm))
    cpu = run_one(insn, lambda c: c.regs.__setitem__(GPR.RAX, a))
    expected, flags = S.int_binop(op, a, S.to_unsigned(imm))
    assert cpu.regs[GPR.RAX] == expected
    for f in Flag:
        assert cpu.flags[f] == flags[f]


floats = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


@given(op=st.sampled_from([Op.ADDSD, Op.SUBSD, Op.MULSD]), a=floats, b=floats)
@settings(max_examples=150)
def test_float_binop_matches_semantics(op, a, b):
    insn = ins(op, FReg(XMM.XMM1), FReg(XMM.XMM2))

    def setup(cpu):
        cpu.xmm[XMM.XMM1][0] = a
        cpu.xmm[XMM.XMM2][0] = b

    cpu = run_one(insn, setup)
    assert cpu.xmm[XMM.XMM1][0] == S.float_binop(op, a, b)


@given(a=floats, b=floats)
@settings(max_examples=100)
def test_ucomisd_matches_semantics(a, b):
    insn = ins(Op.UCOMISD, FReg(XMM.XMM0), FReg(XMM.XMM1))

    def setup(cpu):
        cpu.xmm[XMM.XMM0][0] = a
        cpu.xmm[XMM.XMM1][0] = b

    cpu = run_one(insn, setup)
    expected = S.ucomisd_flags(a, b)
    for f in Flag:
        assert cpu.flags[f] == expected[f]


@given(a=ints, b=ints.filter(lambda v: S.to_signed(v) != 0))
@settings(max_examples=100)
def test_idiv_matches_semantics(a, b):
    insn = ins(Op.IDIV, Reg(GPR.RCX))

    def setup(cpu):
        cpu.regs[GPR.RAX] = a
        cpu.regs[GPR.RCX] = b

    cpu = run_one(insn, setup)
    quot, rem = S.idiv(a, b)
    assert cpu.regs[GPR.RAX] == quot
    assert cpu.regs[GPR.RDX] == rem
