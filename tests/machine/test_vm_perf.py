"""Machine facade and performance-counter tests."""

from __future__ import annotations

import pytest

from repro.errors import CompileError, LinkError
from repro.machine.perf import PerfCounters
from repro.machine.vm import Machine


def test_load_returns_unit_record():
    m = Machine()
    unit = m.load("long f() { return 1; } long g() { return 2; }", unit="demo")
    assert unit.name == "demo"
    assert set(unit.functions) == {"f", "g"}
    assert unit.functions["f"] == m.symbol("f")


def test_load_compile_error_propagates():
    m = Machine()
    with pytest.raises(CompileError):
        m.load("long f() { return undeclared; }")


def test_call_by_name_and_address():
    m = Machine()
    m.load("long f(long a) { return a + 1; }")
    addr = m.symbol("f")
    assert m.call("f", 1).int_return == m.call(addr, 1).int_return == 2


def test_call_undefined_symbol():
    m = Machine()
    with pytest.raises(LinkError):
        m.call("missing")


def test_disassemble_function_requires_known_extent():
    m = Machine()
    m.load("long f() { return 1; }")
    assert "ret" in m.disassemble_function("f")
    with pytest.raises(KeyError):
        m.disassemble_function(0x123456)


def test_host_function_symbol_registered():
    m = Machine()
    addr = m.register_host_function("helper", lambda cpu: None)
    assert m.symbol("helper") == addr


def test_runs_have_independent_perf_deltas():
    m = Machine()
    m.load("long f(long n) { long t = 0; for (long i = 0; i < n; i++) t += i; return t; }")
    small = m.call("f", 2)
    big = m.call("f", 50)
    small2 = m.call("f", 2)
    assert big.cycles > small.cycles
    assert small.cycles == small2.cycles  # deterministic, per-run deltas


def test_perf_snapshot_and_delta():
    perf = PerfCounters()
    perf.cycles = 100
    perf.loads = 7
    snap = perf.snapshot()
    perf.cycles = 150
    perf.loads = 9
    delta = perf.delta(snap)
    assert delta.cycles == 50 and delta.loads == 2
    # snapshot unaffected
    assert snap.cycles == 100


def test_perf_reset():
    perf = PerfCounters()
    perf.cycles = 5
    perf.by_segment_loads["heap"] = 3
    perf.reset()
    assert perf.cycles == 0
    assert perf.by_segment_loads == {}


def test_perf_as_dict_roundtrip():
    perf = PerfCounters(cycles=10, instructions=4, calls=1)
    d = perf.as_dict()
    assert d["cycles"] == 10 and d["instructions"] == 4 and d["calls"] == 1
