"""Tier-2 trace JIT tests: differential equality against the
interpreter with traces actually formed, exact side-exit accounting,
multi-version promotion under a shifting branch profile, step-limit
parity, and invalidation severing installed traces.

Every machine here uses hair-trigger thresholds (``hot_threshold=4,
min_edge=1``) so small test loops promote; the assertions on
``trace_installs``/``trace_iterations`` prove the trace tier actually
executed the iterations being compared, not tier 1.
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import CpuError
from repro.machine.tracejit import TraceJIT, enable_tracejit
from repro.machine.vm import Machine
from repro.obs import Metrics

#: Aggressive promotion thresholds for test-sized loops.
HOT = dict(hot_threshold=4, min_edge=1)


def fingerprint(machine, result):
    """Full architectural outcome of one run, bitwise-comparable."""
    cpu = machine.cpu
    return (
        result.uint_return,
        struct.pack("<d", result.float_return),
        result.steps,
        tuple(sorted(result.perf.as_dict().items())),
        tuple(sorted(result.perf.by_segment_loads.items())),
        tuple(sorted(result.perf.by_segment_stores.items())),
        tuple(cpu.regs),
        tuple(tuple(x) for x in cpu.xmm),
        cpu.pc,
    )


#: Hot-loop programs covering the trace compiler's operand families:
#: integer arithmetic with a division, arrays (load + store sites in
#: multiple segments), float accumulation with comparisons, and a
#: two-block cycle (loop body + guard).
PROGRAMS = {
    "intloop": """
        long main() {
            long t; long i;
            t = 0;
            for (i = 1; i <= 400; i = i + 1) { t = t + i * 3 - t / 7; }
            return t;
        }
    """,
    "arrays": """
        long main() {
            long a[64]; long i; long t;
            for (i = 0; i < 64; i = i + 1) { a[i] = i * 5 % 17; }
            t = 0;
            for (i = 0; i < 64; i = i + 1) { t = t + a[63 - i]; }
            return t;
        }
    """,
    "floats": """
        double main() {
            double total; long i; double x;
            total = 0.0;
            for (i = 0; i < 300; i = i + 1) {
                x = i * 0.25 - 20.0;
                if (x < 0.0) { x = 0.0 - x; }
                total = total + x / (x + 1.0);
            }
            return total;
        }
    """,
    "rare_branch": """
        long main() {
            long t; long i;
            t = 0;
            for (i = 0; i < 500; i = i + 1) {
                if (i == 437) { t = t + 1000000; }
                t = t + i;
            }
            return t;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_differential_bit_for_bit_with_traces(name):
    src = PROGRAMS[name]
    interp = Machine()
    interp.load(src)
    traced = Machine()
    traced.load(src)
    traced.enable_jit(trace=True, **HOT)
    r_i = interp.call("main")
    r_t = traced.call("main")
    assert fingerprint(interp, r_i) == fingerprint(traced, r_t)
    stats = traced.jit.stats()
    assert stats["trace_installs"] > 0, "no trace formed — nothing tested"
    assert stats["trace_iterations"] > 0
    assert stats["interp_fallbacks"] == 0
    # second run: warm traces, still identical
    assert fingerprint(interp, interp.call("main")) == fingerprint(
        traced, traced.call("main")
    )


def test_side_exit_accounting_exact():
    """The loop's final iteration disagrees with the recorded branch
    direction, so every run ends through a guarded side exit; steps and
    every deterministic perf counter must still match the interpreter
    exactly (the ``_ran_partial`` contract)."""
    src = ("long f(long n) { long t; long i; t = 0;"
           " for (i = 0; i < n; i = i + 1) { t = t + i * 2; } return t; }")
    interp = Machine()
    interp.load(src)
    traced = Machine()
    traced.load(src)
    traced.enable_jit(trace=True, **HOT)
    for n in (50, 51, 1, 0, 200):
        r_i = interp.call("f", n)
        r_t = traced.call("f", n)
        assert fingerprint(interp, r_i) == fingerprint(traced, r_t), n
    stats = traced.jit.stats()
    assert stats["trace_side_exits"] > 0
    assert stats["interp_fallbacks"] == 0


def test_max_steps_parity_on_nonterminating_loop():
    src = ("long main() { long t; t = 0;"
           " for (t = 0; t >= 0; t = t + 1) { } return t; }")
    msgs = []
    for trace in (False, None):
        m = Machine()
        m.load(src)
        if trace is None:
            m.enable_jit(trace=True, **HOT)
        with pytest.raises(CpuError) as exc:
            m.call("main", max_steps=5000)
        msgs.append(str(exc.value))
    assert msgs[0] == msgs[1]  # same step count, same faulting pc


def test_max_steps_boundary_exact():
    """A hot-loop run finishing in exactly N steps must succeed with
    max_steps=N and fail with N-1, same as the interpreter — the trace's
    iteration cap may never overstep the budget."""
    src = ("long main() { long t; long i; t = 0;"
           " for (i = 0; i < 100; i = i + 1) { t = t + i; } return t; }")
    interp = Machine()
    interp.load(src)
    steps = interp.call("main").steps
    m = Machine()
    m.load(src)
    m.enable_jit(trace=True, **HOT)
    assert m.call("main", max_steps=steps).int_return == 4950
    assert m.jit.stats()["trace_iterations"] > 0
    with pytest.raises(CpuError):
        m.call("main", max_steps=steps - 1)


def test_multi_version_traces_on_phase_shift():
    """A branch profile that flips halfway (local phase, then remote
    phase) must deactivate the first trace and promote a second version
    keyed by the new direction signature — and stay bit-for-bit."""
    src = """
        long f(long n) {
            long t; long i;
            t = 0;
            for (i = 0; i < 2 * n; i = i + 1) {
                if (i < n) { t = t + 3; } else { t = t + i; }
            }
            return t;
        }
    """
    interp = Machine()
    interp.load(src)
    traced = Machine()
    traced.load(src)
    traced.enable_jit(trace=True, deact_min_exits=2, **HOT)
    for n in (400, 400, 400):
        assert fingerprint(interp, interp.call("f", n)) == fingerprint(
            traced, traced.call("f", n))
    stats = traced.jit.stats()
    assert stats["trace_versions"] >= 2, stats
    assert stats["trace_deactivations"] >= 1, stats
    assert stats["interp_fallbacks"] == 0


def test_version_reuse_no_recompile_in_steady_state():
    """Once both versions of a phase-shifting loop are compiled, further
    calls swap installed versions without new compiles."""
    src = """
        long f(long n) {
            long t; long i;
            t = 0;
            for (i = 0; i < 2 * n; i = i + 1) {
                if (i < n) { t = t + 3; } else { t = t + i; }
            }
            return t;
        }
    """
    m = Machine()
    m.load(src)
    m.enable_jit(trace=True, deact_min_exits=2, **HOT)
    for _ in range(4):
        m.call("f", 300)
    compiles = m.jit.stats()["trace_compiles"]
    for _ in range(3):
        m.call("f", 300)
    assert m.jit.stats()["trace_compiles"] == compiles


def test_invalidation_severs_installed_traces():
    """An in-place poke over a traced function must retire its versions
    and drop the installed entry; the next run executes the new bytes."""
    src = ("long main() { long t; long i; t = 0;"
           " for (i = 0; i < 200; i = i + 1) { t = t + 2; } return t; }")
    m = Machine()
    m.load(src)
    m.enable_jit(trace=True, **HOT)
    assert m.call("main").int_return == 400
    stats = m.jit.stats()
    assert stats["installed_traces"] > 0
    entry = m.image.resolve("main")
    size = m.image.function_sizes.get(entry, 64)
    m.image.poke(entry, bytes(m.image.peek(entry, size)))  # same bytes, still a code write
    stats = m.jit.stats()
    assert stats["installed_traces"] == 0
    assert stats["trace_invalidations"] >= 1
    assert m.call("main").int_return == 400  # re-profiles and re-traces


def test_reserve_rewrite_drops_overlapping_traces():
    """Snapshot re-placement pins rewrite-segment ranges via
    ``reserve_rewrite``; a pinned range overlapping a traced body must
    sever the trace exactly like a poke (the generation bump makes the
    dispatch loop re-resolve instead of running the stale entry)."""
    from repro.asm.assembler import assemble

    loop_src = "\n".join([
        "xor rax, rax",
        "mov rcx, 0",
        "loop:",
        "add rax, rcx",
        "add rcx, 1",
        "cmp rcx, 150",
        "jne loop",
        "ret",
    ])
    m = Machine()
    m.load("long main() { return 0; }")  # gives the image a toolchain
    m.enable_jit(trace=True, **HOT)
    # two-phase assembly into the rewrite segment, the region
    # reserve_rewrite manages
    probe, _ = assemble(loop_src, 0)
    addr = m.image.alloc_rewrite(len(probe))
    code, _ = assemble(loop_src, addr)
    m.image.poke(addr, code)
    m.image.define_symbol("hot2", addr)

    gen_before = m.jit.gen
    assert m.call("hot2").int_return == sum(range(150))
    assert m.jit.stats()["installed_traces"] > 0
    # pinning only the 8-byte header must NOT drop the loop trace —
    # trace invalidation is span-precise, like tier 1's
    m.image.reserve_rewrite(addr, 8)
    assert m.jit.stats()["installed_traces"] == 1
    # pinning the whole body severs it and bumps the generation
    m.image.reserve_rewrite(addr, len(code))
    assert m.jit.gen != gen_before
    assert m.jit.stats()["installed_traces"] == 0
    assert m.jit.stats()["trace_invalidations"] >= 1
    assert m.call("hot2").int_return == sum(range(150))


def test_trace_metrics_exported():
    metrics = Metrics()
    m = Machine()
    m.load("long main() { long t; long i; t = 0;"
           " for (i = 0; i < 300; i = i + 1) { t = t + i; } return t; }")
    enable_tracejit(m, metrics=metrics, **HOT)
    m.call("main")
    counters = metrics.counters_with_prefix("jit.trace.")
    assert counters.get("jit.trace.compiles", 0) > 0
    assert counters.get("jit.trace.installs", 0) > 0
    assert counters.get("jit.trace.entries", 0) > 0
    assert counters.get("jit.trace.iterations", 0) > 0
    # the point-in-time stats and the cumulative metrics agree
    assert counters["jit.trace.iterations"] == m.jit.stats()["trace_iterations"]


def test_stats_schema_superset_of_tier1():
    m = Machine()
    m.load("long main() { return 1; }")
    m.enable_jit(trace=True)
    m.call("main")
    stats = m.jit.stats()
    for key in ("compiles", "hits", "chain_follows", "reuses",
                "interp_fallbacks", "trace_compiles", "trace_installs",
                "trace_deactivations", "trace_aborts",
                "trace_invalidations", "trace_entries", "trace_side_exits",
                "trace_iterations", "trace_versions", "installed_traces"):
        assert key in stats, key


def test_enable_is_idempotent_and_guards_tier_conflict():
    m = Machine()
    m.load("long main() { return 1; }")
    jit = m.enable_jit(trace=True)
    assert isinstance(jit, TraceJIT)
    assert m.enable_jit(trace=True) is jit
    m2 = Machine(jit=True)  # tier-1 engine attached
    m2.load("long main() { return 1; }")
    with pytest.raises(RuntimeError):
        enable_tracejit(m2)
