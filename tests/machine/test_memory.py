"""Memory subsystem tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryError_, SegmentationFault
from repro.machine.memory import Memory, Perm, Segment


@pytest.fixture
def mem() -> Memory:
    m = Memory()
    m.map_segment(Segment("ram", 0x1000, 0x1000, Perm.RW))
    m.map_segment(Segment("rom", 0x4000, 0x100, Perm.R))
    m.map_segment(Segment("remote", 0x8000, 0x100, Perm.RW, extra_cost=200))
    return m


def test_read_write_roundtrip(mem):
    mem.write_u64(0x1008, 0xDEADBEEF)
    assert mem.read_u64(0x1008) == 0xDEADBEEF


def test_f64_roundtrip(mem):
    mem.write_f64(0x1010, -2.5)
    assert mem.read_f64(0x1010) == -2.5


def test_i64_signed_view(mem):
    mem.write_u64(0x1000, 2**64 - 3)
    assert mem.read_i64(0x1000) == -3


def test_unmapped_access_faults(mem):
    with pytest.raises(SegmentationFault):
        mem.read_u64(0x9999)


def test_access_straddling_segment_end_faults(mem):
    with pytest.raises(SegmentationFault):
        mem.read_u64(0x1000 + 0x1000 - 4)


def test_write_to_readonly_rejected(mem):
    with pytest.raises(MemoryError_):
        mem.write_u64(0x4000, 1)


def test_overlapping_segments_rejected(mem):
    with pytest.raises(MemoryError_):
        mem.map_segment(Segment("bad", 0x1800, 0x1000))


def test_extra_cost_surfaced(mem):
    assert mem.access_cost(0x8000) == 200
    assert mem.access_cost(0x1000) == 0


def test_counters_track_by_segment(mem):
    mem.read_u64(0x1000)
    mem.read_u64(0x4000)
    mem.write_u64(0x1000, 1)
    assert mem.loads["ram"] == 1
    assert mem.loads["rom"] == 1
    assert mem.stores["ram"] == 1
    mem.reset_counters()
    assert mem.loads["ram"] == 0


def test_segment_by_name(mem):
    assert mem.segment_by_name("rom").base == 0x4000
    with pytest.raises(MemoryError_):
        mem.segment_by_name("nope")


@given(
    value=st.integers(min_value=0, max_value=2**64 - 1),
    offset=st.integers(min_value=0, max_value=0xF00),
)
def test_u64_roundtrip_property(value, offset):
    m = Memory()
    m.map_segment(Segment("ram", 0x1000, 0x1000, Perm.RW))
    m.write_u64(0x1000 + offset, value)
    assert m.read_u64(0x1000 + offset) == value


@given(value=st.floats(allow_nan=False, allow_infinity=True))
def test_f64_roundtrip_property(value):
    m = Memory()
    m.map_segment(Segment("ram", 0x1000, 0x100, Perm.RW))
    m.write_f64(0x1000, value)
    assert m.read_f64(0x1000) == value
