"""Self-modifying guests stay coherent across execution tiers (PR 6).

The machine permits plain guest stores into executable segments (there
is no W^X in BX64's flat world), which makes self-modification a
first-class hazard: the interpreter caches decoded instructions per pc,
and the block JIT caches whole compiled blocks.  Both caches hang off
:meth:`repro.machine.image.Image.notify_code_write` — fired by
``Image.poke`` (the host/emit route) and by the CPU's store helpers and
compiled-block stores (the organic guest route).

The regression pinned here: a guest that rewrites its own **hot** block
mid-run must trigger cache invalidation on every tier and reconverge
bit-for-bit with the plain interpreter — including a store that patches
a *later instruction of the block it is currently executing* (the
compiled block bails out early through its code-write exit rather than
running stale instructions).
"""

from __future__ import annotations

import struct

import pytest

from repro.asm.assembler import assemble
from repro.machine.vm import Machine


def load_asm(machine: Machine, name: str, src: str) -> int:
    probe, _ = assemble(src, 0, extra_labels=dict(machine.image.symbols))
    addr = machine.image.add_function(name, b"\x00" * len(probe))
    code, _ = assemble(src, addr, extra_labels=dict(machine.image.symbols))
    machine.image.poke(addr, code)
    return addr


def _patch_qword(new_imm: int) -> int:
    """A qword that overwrites ``mov rax, imm32`` (7 bytes) and
    re-asserts the opcode byte of the ``ret`` that follows it."""
    victim = assemble(f"mov rax, {new_imm}", 0)[0]
    assert len(victim) == 7
    return struct.unpack("<Q", victim + assemble("ret", 0)[0][:1])[0]


def _build_target(machine: Machine) -> int:
    """``target``: returns 111 until its immediate is patched."""
    return load_asm(machine, "target", "mov rax, 111\nret")


def _build_patcher(machine: Machine, target: int) -> int:
    """``patcher``: stores the patch qword over ``target``'s body."""
    src = "\n".join([
        f"mov rcx, {_patch_qword(222)}",
        f"mov [{target}], rcx",
        "mov rax, rdi",
        "ret",
    ])
    return load_asm(machine, "patcher", src)


def _run_sequence(machine: Machine) -> tuple:
    """hot -> patch -> rerun; returns every architectural observation."""
    target = machine.image.resolve("target")
    patcher = machine.image.resolve("patcher")
    before = machine.cpu.run(target)           # compiles/caches the block
    again = machine.cpu.run(target)            # served from the cache
    patched = machine.cpu.run(patcher, 7)      # organic store over target
    after = machine.cpu.run(target)            # must see the new bytes
    return (
        before.uint_return, again.uint_return,
        patched.uint_return, after.uint_return,
        before.steps, again.steps, patched.steps, after.steps,
    )


def test_interpreter_icache_invalidated_by_guest_store():
    m = Machine()
    _build_patcher(m, _build_target(m))
    assert _run_sequence(m) == (111, 111, 7, 222, 2, 2, 4, 2)


def test_blockjit_invalidated_by_guest_store_and_matches_interpreter():
    interp = Machine()
    _build_patcher(interp, _build_target(interp))
    jit = Machine()
    _build_patcher(jit, _build_target(jit))
    engine = jit.enable_jit()
    assert _run_sequence(jit) == _run_sequence(interp)
    assert engine.invalidations >= 1, "the compiled target block survived"


def test_blockjit_invalidated_by_host_poke():
    """The emit/host route: ``Image.poke`` over compiled code must drop
    the block just like a guest store does."""
    m = Machine()
    target = _build_target(m)
    engine = m.enable_jit()
    assert m.cpu.run(target).uint_return == 111
    assert target in engine.cache
    m.image.poke(target, assemble("mov rax, 333\nret", target)[0])
    assert target not in engine.cache
    assert m.cpu.run(target).uint_return == 333


def test_store_into_own_block_takes_the_codewrite_exit():
    """The hardest case: the store patches a *later* instruction of the
    very block being executed.  The interpreter refetches per step and
    sees the new immediate; the compiled block must bail out through its
    code-write exit instead of running the stale tail."""
    def build(machine: Machine) -> int:
        entry = machine.image.add_function("selfmod", bytes(64))
        mov_i64 = len(assemble(f"mov rcx, {1 << 40}", 0)[0])
        store = len(assemble("mov [4096], rcx", 0)[0])
        victim_addr = entry + mov_i64 + store
        src = "\n".join([
            f"mov rcx, {_patch_qword(999)}",
            f"mov [{victim_addr}], rcx",
            "mov rax, 111",              # the victim: becomes 999
            "ret",
        ])
        machine.image.poke(entry, assemble(src, entry)[0])
        return entry

    interp = Machine()
    e1 = build(interp)
    want = interp.cpu.run(e1)
    assert want.uint_return == 999, "interpreter must see the patched imm"

    jit = Machine()
    e2 = build(jit)
    jit.enable_jit()
    got = jit.cpu.run(e2)
    assert (got.uint_return, got.steps) == (want.uint_return, want.steps)
    assert got.perf.instructions == want.perf.instructions

    # a second run executes the patched body on both tiers
    assert jit.cpu.run(e2).uint_return == interp.cpu.run(e1).uint_return


@pytest.mark.parametrize("tier", ["interp", "blockjit", "tracejit"])
def test_selfmod_loop_reconverges(tier):
    """A hot loop that flips its own addend mid-run: iteration count and
    accumulator must be identical on every tier (the loop body block is
    recompiled after the in-loop store).  On the trace tier the store
    lands while the trace over the loop is *the running frame* — the
    code-write exit must sever it mid-flight."""
    m = Machine()
    entry = m.image.add_function("loopmod", bytes(128))
    # the victim "add rax, 1" sits right after the two-insn header; the
    # patch qword is its "add rax, 2" replacement (7 bytes) plus the
    # opcode byte of the nop that follows
    xor_l = len(assemble("xor rax, rax", 0)[0])
    movc_l = len(assemble("mov rcx, 6", 0)[0])
    victim_addr = entry + xor_l + movc_l
    add_two = assemble("add rax, 2", 0)[0]
    nop_op = assemble("nop", 0)[0][:1]
    qword = struct.unpack("<Q", add_two + nop_op)[0]
    src = "\n".join([
        "xor rax, rax",
        "mov rcx, 24",
        "loop:",
        "add rax, 1",            # victim
        "nop",                   # keeps the patch qword in the body
        "sub rcx, 1",
        "cmp rcx, 12",
        "jne skip",
        f"mov rdx, {qword}",
        f"mov [{victim_addr}], rdx",
        "skip:",
        "cmp rcx, 0",
        "jne loop",
        "ret",
    ])
    m.image.poke(entry, assemble(src, entry)[0])

    if tier == "blockjit":
        m.enable_jit()
    elif tier == "tracejit":
        engine = m.enable_jit(trace=True, hot_threshold=4, min_edge=1)
    run = m.cpu.run(entry)
    # 12 iterations of +1, then the patch lands, then 12 of +2
    assert run.uint_return == 12 * 1 + 12 * 2
    if tier == "tracejit":
        # the hot-path trace must have formed before the patch landed
        # (the rare patch branch is a side exit; the store then severs
        # the installed trace through the invalidation path)
        stats = engine.stats()
        assert stats["trace_installs"] >= 1, stats
        assert stats["trace_invalidations"] >= 1, stats


def test_selfmod_loop_trace_matches_interpreter_exactly():
    """The trace-tier run of the self-patching loop must match the
    interpreter on *every* deterministic counter, not just the result —
    the side exit into the patch block and the invalidation afterwards
    both carry exact step/cycle accounting."""
    def build(machine: Machine) -> int:
        entry = machine.image.add_function("loopmod", bytes(128))
        xor_l = len(assemble("xor rax, rax", 0)[0])
        movc_l = len(assemble("mov rcx, 24", 0)[0])
        victim_addr = entry + xor_l + movc_l
        add_two = assemble("add rax, 2", 0)[0]
        nop_op = assemble("nop", 0)[0][:1]
        qword = struct.unpack("<Q", add_two + nop_op)[0]
        src = "\n".join([
            "xor rax, rax",
            "mov rcx, 24",
            "loop:",
            "add rax, 1",
            "nop",
            "sub rcx, 1",
            "cmp rcx, 12",
            "jne skip",
            f"mov rdx, {qword}",
            f"mov [{victim_addr}], rdx",
            "skip:",
            "cmp rcx, 0",
            "jne loop",
            "ret",
        ])
        machine.image.poke(entry, assemble(src, entry)[0])
        return entry

    interp = Machine()
    want = interp.cpu.run(build(interp))
    traced = Machine()
    e = build(traced)
    traced.enable_jit(trace=True, hot_threshold=4, min_edge=1)
    got = traced.cpu.run(e)
    assert (got.uint_return, got.steps) == (want.uint_return, want.steps)
    assert got.perf.as_dict() == want.perf.as_dict()
    assert dict(got.perf.by_segment_stores) == dict(want.perf.by_segment_stores)


def test_trace_codewrite_exit_every_iteration():
    """A loop whose *hot path* stores over its own body every iteration
    (same bytes, so semantics never change): each trace entry must take
    the code-write exit after at most one iteration, invalidate, and
    reconverge bit-for-bit with the interpreter — the trace tier can
    never batch iterations past a store into executable bytes."""
    def build(machine: Machine) -> int:
        entry = machine.image.add_function("storemod", bytes(96))
        xor_l = len(assemble("xor rax, rax", 0)[0])
        movc_l = len(assemble("mov rcx, 40", 0)[0])
        movd_l = len(assemble(f"mov rdx, {1 << 40}", 0)[0])
        victim_addr = entry + xor_l + movc_l + movd_l
        add_one = assemble("add rax, 1", 0)[0]
        nop_op = assemble("nop", 0)[0][:1]
        qword = struct.unpack("<Q", add_one + nop_op)[0]
        src = "\n".join([
            "xor rax, rax",
            "mov rcx, 40",
            f"mov rdx, {qword}",
            "loop:",
            "add rax, 1",            # victim: rewritten with itself
            "nop",
            f"mov [{victim_addr}], rdx",
            "sub rcx, 1",
            "cmp rcx, 0",
            "jne loop",
            "ret",
        ])
        machine.image.poke(entry, assemble(src, entry)[0])
        return entry

    interp = Machine()
    want = interp.cpu.run(build(interp))
    assert want.uint_return == 40

    traced = Machine()
    e = build(traced)
    engine = traced.enable_jit(trace=True, hot_threshold=4, min_edge=1)
    got = traced.cpu.run(e)
    assert (got.uint_return, got.steps) == (want.uint_return, want.steps)
    assert got.perf.as_dict() == want.perf.as_dict()
    stats = engine.stats()
    assert stats["interp_fallbacks"] == 0
