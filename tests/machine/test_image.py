"""Executable-image tests: allocators, symbols, remote nodes, literals."""

from __future__ import annotations

import struct

import pytest

from repro.errors import LinkError, MemoryError_
from repro.machine.image import Image, LAYOUT


@pytest.fixture()
def image() -> Image:
    return Image()


def test_add_function_places_and_names(image):
    addr = image.add_function("f", b"\x70\x00" * 3)
    assert image.symbol("f") == addr
    assert image.seg_code.contains(addr, 6)
    assert image.function_sizes[addr] == 6
    assert image.peek(addr, 2) == b"\x70\x00"


def test_functions_are_aligned(image):
    a = image.add_function("a", b"\x70\x00")
    b = image.add_function("b", b"\x70\x00")
    assert a % 16 == 0 and b % 16 == 0 and b > a


def test_duplicate_symbol_rejected(image):
    image.add_function("f", b"\x70\x00")
    with pytest.raises(LinkError):
        image.add_function("f", b"\x70\x00")


def test_undefined_symbol_raises(image):
    with pytest.raises(LinkError):
        image.symbol("nope")


def test_resolve_accepts_addresses(image):
    assert image.resolve(0x1234) == 0x1234


def test_data_vs_rodata_permissions(image):
    rw = image.add_data("g", b"\x01" * 8)
    ro = image.add_rodata("c", b"\x02" * 8)
    image.memory.write_u64(rw, 5)
    with pytest.raises(MemoryError_):
        image.memory.write_u64(ro, 5)


def test_malloc_zeroed_and_aligned(image):
    a = image.malloc(24)
    b = image.malloc(3, align=16)
    assert b % 16 == 0
    assert image.peek(a, 24) == b"\x00" * 24


def test_heap_exhaustion(image):
    with pytest.raises(MemoryError_):
        image.malloc(LAYOUT.heap_size + 1)


def test_emit_rewritten_lands_in_rewrite_segment(image):
    addr = image.emit_rewritten("f__brew", b"\x70\x00")
    assert image.seg_rewrite.contains(addr, 2)
    assert image.symbol("f__brew") == addr


def test_host_slots_unmapped_and_below_2_31(image):
    addr = image.alloc_host_slot("host")
    assert addr < 2**31
    with pytest.raises(MemoryError_):
        image.memory.read_u64(addr)


def test_remote_nodes_have_surcharge_and_distinct_bases(image):
    s1 = image.map_remote_node(1, 0x100, extra_cost=99)
    s2 = image.map_remote_node(2, 0x100, extra_cost=99)
    assert s2.base - s1.base == LAYOUT.remote_stride
    assert image.memory.access_cost(s1.base) == 99


def test_float_literal_pool_dedupes(image):
    a = image.float_literal(2.5)
    b = image.float_literal(2.5)
    c = image.float_literal(-2.5)
    assert a == b != c
    assert struct.unpack("<d", image.peek(a, 8))[0] == 2.5


def test_float_literal_distinguishes_zero_signs(image):
    assert image.float_literal(0.0) != image.float_literal(-0.0)


def test_initial_rsp_aligned_inside_stack(image):
    rsp = image.initial_rsp
    assert rsp % 16 == 0
    assert image.seg_stack.contains(rsp - 8, 8)
