"""Tier-1 block engine tests: differential equality against the
interpreter, code-cache invalidation (in-place pokes, icache flushes,
manager withdrawals), chaining, and step-limit parity."""

from __future__ import annotations

import struct

import pytest

from repro.asm.assembler import assemble
from repro.core import BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setpar
from repro.errors import CpuError
from repro.machine.blockjit import enable_blockjit
from repro.machine.vm import Machine
from repro.obs import Metrics


def load(image, name, src, extra=None):
    """Two-phase hand-assembly into the code segment (same helper as
    the interpreter tests)."""
    probe, _ = assemble(src, base_addr=0, extra_labels=dict(extra or {}, **image.symbols))
    addr = image.add_function(name, b"\x00" * len(probe))
    code, _ = assemble(src, base_addr=addr, extra_labels=dict(extra or {}, **image.symbols))
    image.poke(addr, code)
    return addr


def fingerprint(machine, result):
    """Full architectural outcome of one run, bitwise-comparable."""
    cpu = machine.cpu
    return (
        result.uint_return,
        struct.pack("<d", result.float_return),
        result.steps,
        tuple(sorted(result.perf.as_dict().items())),
        tuple(sorted(result.perf.by_segment_loads.items())),
        tuple(sorted(result.perf.by_segment_stores.items())),
        tuple(cpu.regs),
        tuple(tuple(x) for x in cpu.xmm),
        cpu.pc,
    )


#: Minic programs covering every opclass family the compiler emits:
#: recursion + calls, integer loops with arrays and division, float
#: arithmetic with comparisons and conversions.
PROGRAMS = {
    "fib": "long fib(long n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }"
           " long main() { return fib(12); }",
    "loops": """
        long main() {
            long a[32]; long i; long total;
            for (i = 0; i < 32; i = i + 1) { a[i] = i * 7 % 13; }
            total = 0;
            for (i = 0; i < 32; i = i + 1) { total = total + a[i] / 3; }
            return total;
        }
    """,
    "floats": """
        double main() {
            double total; long i; double x;
            total = 0.0;
            for (i = 0; i < 64; i = i + 1) {
                x = i * 0.5 - 7.0;
                if (x < 0.0) { x = 0.0 - x; }
                total = total + x * x / (x + 1.0);
            }
            return total;
        }
    """,
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_differential_bit_for_bit(name):
    src = PROGRAMS[name]
    interp = Machine()
    interp.load(src)
    jitted = Machine(jit=True)
    jitted.load(src)
    r_i = interp.call("main")
    r_j = jitted.call("main")
    assert fingerprint(interp, r_i) == fingerprint(jitted, r_j)
    assert jitted.jit.stats()["interp_fallbacks"] == 0
    # second run: warm cache, still identical
    assert fingerprint(interp, interp.call("main")) == fingerprint(
        jitted, jitted.call("main")
    )


def test_host_function_parity():
    def host(cpu):
        cpu.regs[0] = cpu.regs[7] * 3  # rax = rdi * 3

    machines = []
    for jit in (False, True):
        m = Machine(jit=jit)
        m.register_host_function("triple", host)
        m.load("extern long triple(long x);"
               " long main() { return triple(7) + triple(10); }")
        machines.append(m)
    r_i = machines[0].call("main")
    r_j = machines[1].call("main")
    assert r_j.int_return == 51
    assert fingerprint(machines[0], r_i) == fingerprint(machines[1], r_j)


def test_host_function_sees_exact_counters_mid_call():
    """A host function observing perf mid-call must see the same
    counters under both tiers (block costs are charged *before* the
    call transfers, like the interpreter's per-step accounting)."""
    seen = []

    def probe(cpu):
        seen.append((cpu.perf.instructions, cpu.perf.cycles, cpu.perf.loads))
        cpu.regs[0] = 0

    values = []
    for jit in (False, True):
        seen.clear()
        m = Machine(jit=jit)
        m.register_host_function("probe", probe)
        m.load("extern long probe(long x);"
               " long main() { long i; for (i = 0; i < 3; i = i + 1)"
               " { probe(i); } return 0; }")
        m.call("main")
        values.append(list(seen))
    assert values[0] == values[1]


def test_chaining_and_hit_counters():
    m = Machine(jit=True)
    m.load("long main() { long i; long t; t = 0;"
           " for (i = 0; i < 100; i = i + 1) { t = t + i; } return t; }")
    assert m.call("main").int_return == 4950
    stats = m.jit.stats()
    assert stats["compiles"] > 0
    assert stats["chain_follows"] > 0  # the loop back-edge is chained
    before_hits = stats["hits"]
    m.call("main")
    assert m.jit.stats()["hits"] > before_hits  # warm cache reused
    assert m.jit.stats()["compiles"] == stats["compiles"]


def test_stale_block_never_executes_after_inplace_poke():
    """In-place rewrites of executable bytes (Image.poke) must drop the
    covering compiled block — the next run recompiles from the new
    bytes instead of executing the stale translation."""
    m = Machine(jit=True)
    addr = load(m.image, "f", "mov rax, 42\nret")
    assert m.call("f").int_return == 42
    assert m.jit.stats()["cached_blocks"] > 0
    replacement, _ = assemble("mov rax, 7\nret", base_addr=addr)
    m.image.poke(addr, replacement)
    assert m.jit.stats()["invalidations"] > 0
    assert m.call("f").int_return == 7


def test_invalidate_icache_flushes_block_cache():
    m = Machine(jit=True)
    load(m.image, "f", "mov rax, 1\nret")
    m.call("f")
    assert m.jit.stats()["cached_blocks"] > 0
    m.cpu.invalidate_icache()
    assert m.jit.stats()["cached_blocks"] == 0


def test_interpreter_cost_recomputed_after_inplace_rewrite():
    """Regression for the per-instruction cost cache: after rewriting
    code in place and flushing the icache, the interpreter must charge
    the *new* instruction's cost (the old cache keyed on ``id(insn)``,
    which a recycled decode object could collide with)."""
    m = Machine()  # tier 0 only
    buf = m.image.malloc(8)
    m.memory.write_u64(buf, 5, count=False)
    addr = load(m.image, "f", "mov rax, 3\nret")
    plain = m.call("f")
    assert plain.int_return == 3
    replacement, _ = assemble(f"mov rax, [{buf}]\nret", base_addr=addr)
    assert len(replacement) > 0
    m.image.poke(addr, replacement)
    m.cpu.invalidate_icache()
    reloaded = m.call("f")
    assert reloaded.int_return == 5
    # the memory form must charge the load surcharge the register form
    # did not: recomputed, not replayed from a stale cache entry
    assert reloaded.perf.cycles > plain.perf.cycles
    assert reloaded.perf.loads == plain.perf.loads + 1  # the operand load


def test_max_steps_parity_on_nonterminating_loop():
    msgs = []
    for jit in (False, True):
        m = Machine(jit=jit)
        load(m.image, "spin", "top:\nmov rax, 1\nmov rcx, 2\njmp top")
        with pytest.raises(CpuError) as exc:
            m.call("spin", max_steps=1000)
        msgs.append(str(exc.value))
    assert msgs[0] == msgs[1]  # same step count, same faulting pc


def test_max_steps_boundary_exact():
    """A run that finishes in exactly N steps must succeed with
    max_steps=N under both tiers and fail with N-1 under both."""
    results = []
    for jit in (False, True):
        m = Machine(jit=jit)
        m.load("long main() { return 1 + 2; }")
        steps = m.call("main").steps
        m2 = Machine(jit=jit)
        m2.load("long main() { return 1 + 2; }")
        ok = m2.call("main", max_steps=steps)
        with pytest.raises(CpuError):
            m2.call("main", max_steps=steps - 1)
        results.append((steps, ok.int_return))
    assert results[0] == results[1]


def test_rewritten_function_runs_under_jit():
    """Rewriter output lands via emit_rewritten/reserve_rewrite into an
    executable segment; the block engine must compile and run it to the
    same result as the interpreter."""
    src = ("long dot(long n, long s) { long i; long t; t = 0;"
           " for (i = 0; i < n; i = i + 1) { t = t + i * s; } return t; }")
    outs = []
    for jit in (False, True):
        m = Machine(jit=jit)
        m.load(src)
        conf = brew_init_conf()
        brew_setpar(conf, 1, BREW_KNOWN)
        result = brew_rewrite(m, conf, "dot", 10, 3)
        assert result.ok
        run = m.call(result.entry, 10, 3)
        outs.append((run.uint_return, run.perf.cycles, run.steps))
    assert outs[0] == outs[1]
    assert outs[0][0] == sum(i * 3 for i in range(10)) & ((1 << 64) - 1)


def test_manager_withdrawal_invalidates_code_cache():
    """enable_blockjit(manager=...) must register an invalidation
    listener: any eviction (shadow-validation rollback, staleness,
    explicit withdrawal) drops every compiled block so a restored or
    withdrawn variant can never run from a stale translation."""

    class FakeManager:
        def __init__(self):
            self.listeners = []

        def add_invalidation_listener(self, callback):
            self.listeners.append(callback)

    m = Machine()
    manager = FakeManager()
    jit = enable_blockjit(m, manager=manager, metrics=Metrics())
    assert len(manager.listeners) == 1
    load(m.image, "f", "mov rax, 9\nret")
    assert m.call("f").int_return == 9
    assert jit.stats()["cached_blocks"] > 0
    manager.listeners[0]([("dot", (1,))])  # simulate an eviction event
    assert jit.stats()["cached_blocks"] == 0
    assert jit.stats()["invalidations"] > 0
    assert m.call("f").int_return == 9  # recompiles cleanly


def test_jit_metrics_counters_exported():
    metrics = Metrics()
    m = Machine()
    enable_blockjit(m, metrics=metrics)
    m.load("long main() { long i; long t; t = 0;"
           " for (i = 0; i < 50; i = i + 1) { t = t + 2; } return t; }")
    m.call("main")
    counters = metrics.counters_with_prefix("jit.")
    assert counters.get("jit.compiles", 0) > 0
    assert counters.get("jit.chain_follows", 0) > 0
    m.cpu.invalidate_icache()
    assert metrics.value("jit.invalidations") > 0


def test_reuses_counts_chain_follows_as_cache_hits():
    """Regression: ``jit.reuses`` must count *every* cache reuse — both
    dict-probe hits and chained follows.  The old accounting only bumped
    ``jit.hits``, so a fully-chained hot loop (the common steady state,
    where dispatch never touches the dict) looked like a cold cache."""
    metrics = Metrics()
    m = Machine()
    enable_blockjit(m, metrics=metrics)
    m.load("long main() { long i; long t; t = 0;"
           " for (i = 0; i < 80; i = i + 1) { t = t + i; } return t; }")
    m.call("main")
    counters = metrics.counters_with_prefix("jit.")
    assert counters.get("jit.reuses", 0) == (
        counters.get("jit.hits", 0) + counters.get("jit.chain_follows", 0))
    # the loop back-edge chains, so reuses must exceed bare dict hits
    assert counters["jit.reuses"] > counters.get("jit.hits", 0)
    stats = m.jit.stats()
    assert stats["reuses"] == stats["hits"] + stats["chain_follows"]


def test_chain_graph_exposes_edge_frequencies():
    """``chain_graph()`` is the introspection view of the dispatch
    loop's edge profile: every cached block with links appears, edge
    counts match observed follows, and invalidation empties it."""
    m = Machine(jit=True)
    m.load("long main() { long i; long t; t = 0;"
           " for (i = 0; i < 60; i = i + 1) { t = t + i; } return t; }")
    m.call("main")
    graph = m.jit.chain_graph()
    assert graph, "a hot loop must leave chain links behind"
    for addr, edges in graph.items():
        assert isinstance(addr, int) and edges
        for pc, count in edges.items():
            assert isinstance(pc, int) and count >= 0
    # the loop back-edge is the hottest edge in the graph: one install
    # (count 0) plus one follow per remaining iteration
    hottest = max(count for edges in graph.values() for count in edges.values())
    assert hottest >= 58
    back_edges = [
        (addr, pc) for addr, edges in graph.items()
        for pc, count in edges.items() if pc <= addr and count == hottest
    ]
    assert back_edges, "hottest edge should be the loop back-edge"
    # total observed follows across the graph equals the loop's counter
    assert sum(count for edges in graph.values()
               for count in edges.values()) == m.jit.stats()["chain_follows"]
    m.cpu.invalidate_icache()
    assert m.jit.chain_graph() == {}


def test_chain_graph_in_stats():
    m = Machine(jit=True)
    m.load("long main() { long i; long t; t = 0;"
           " for (i = 0; i < 40; i = i + 1) { t = t + 1; } return t; }")
    m.call("main")
    stats = m.jit.stats()
    assert stats["chain_edges"] == sum(
        len(edges) for edges in m.jit.chain_graph().values())


def test_enable_is_idempotent():
    m = Machine(jit=True)
    jit = m.jit
    assert m.enable_jit() is jit
