"""Calling-convention and frame-layout tests."""

from __future__ import annotations

import pytest

from repro.abi.callconv import (
    CALLEE_SAVED, CALLER_SAVED, FLOAT_ARG_REGS, INT_ARG_REGS, RET_FLOAT,
    RET_INT, classify_args,
)
from repro.abi.frame import FrameLayout
from repro.isa.registers import GPR, XMM


def test_saved_sets_partition_gprs():
    assert CALLEE_SAVED | CALLER_SAVED == frozenset(GPR)
    assert not (CALLEE_SAVED & CALLER_SAVED)


def test_argument_registers_are_caller_saved():
    assert all(r in CALLER_SAVED for r in INT_ARG_REGS)


def test_return_registers():
    assert RET_INT is GPR.RAX and RET_FLOAT is XMM.XMM0


def test_classify_args_interleaves_classes():
    out = classify_args(["int", "float", "int", "float", "int"])
    assert [r for t, r in out if t == "int"] == list(INT_ARG_REGS[:3])
    assert [r for t, r in out if t == "float"] == list(FLOAT_ARG_REGS[:2])


def test_classify_args_overflow_rejected():
    with pytest.raises(ValueError):
        classify_args(["int"] * 7)
    with pytest.raises(ValueError):
        classify_args(["float"] * 9)
    with pytest.raises(ValueError):
        classify_args(["vector"])


def test_frame_layout_alignment_and_offsets():
    frame = FrameLayout()
    a = frame.alloc("a", 8)
    b = frame.alloc("b", 24)
    c = frame.alloc("c", 4)  # rounded up
    assert a == -8 and b == -32 and c == -40
    assert frame.offset_of("b") == -32
    assert frame.aligned_size % 16 == 0


def test_frame_layout_rejects_duplicates():
    frame = FrameLayout()
    frame.alloc("x", 8)
    with pytest.raises(ValueError):
        frame.alloc("x", 8)


def test_anonymous_slots_do_not_collide():
    frame = FrameLayout()
    s1 = frame.alloc_anonymous(8)
    s2 = frame.alloc_anonymous(8)
    assert s1 != s2
