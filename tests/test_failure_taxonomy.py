"""The failure-reason taxonomy may not drift.

Four-way consistency between the code (every ``RewriteFailure(reason)``
literal under ``src/``), the registry (``repro.errors.FAILURE_REASONS``),
the fault-injection harness (``repro.testing`` maps every injectable
fault class to its documented reason) and the user docs
(``docs/REWRITER.md``): no undocumented reasons, no dead documented
ones, no injectable fault without a documented outcome."""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import FAILURE_REASONS
from repro.testing import (
    ALL_FAULT_KINDS, ASSURANCE_FAULT_KINDS, EXPECTED_REASON,
    FABRIC_FAULT_KINDS, NETWORK_FAULT_KINDS, TORTURE_FAULT_KINDS,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOCS = REPO / "docs" / "REWRITER.md"

#: Matches the reason literal of a RewriteFailure construction; ``\s*``
#: spans newlines, so multi-line call sites are covered too.
RAISE_PATTERN = re.compile(r"""RewriteFailure\(\s*["']([a-z0-9-]+)["']""")


def raised_reasons() -> set[str]:
    """Every reason constructed anywhere under src/."""
    reasons: set[str] = set()
    for path in SRC.rglob("*.py"):
        reasons |= set(RAISE_PATTERN.findall(path.read_text()))
    return reasons


def test_every_raised_reason_is_registered():
    """No RewriteFailure may use a reason missing from FAILURE_REASONS."""
    undocumented = raised_reasons() - set(FAILURE_REASONS)
    assert not undocumented, f"undocumented failure reasons: {sorted(undocumented)}"


def test_every_registered_reason_is_raised():
    """FAILURE_REASONS may not accumulate dead entries."""
    dead = set(FAILURE_REASONS) - raised_reasons()
    assert not dead, f"documented but never raised: {sorted(dead)}"


def test_docs_cover_every_reason():
    """docs/REWRITER.md must mention each reason as `reason` literal."""
    text = DOCS.read_text()
    missing = [r for r in FAILURE_REASONS if f"`{r}`" not in text]
    assert not missing, f"reasons missing from docs/REWRITER.md: {missing}"


def test_registry_descriptions_are_nonempty():
    """Each taxonomy entry carries a human-readable description."""
    for reason, description in FAILURE_REASONS.items():
        assert description.strip(), f"empty description for {reason!r}"


def test_every_injectable_fault_has_a_registered_reason():
    """Each fault class the harness can inject (pipeline and network)
    maps to a reason that exists in the registry — the four-way link
    between injection, code, registry and docs."""
    assert set(EXPECTED_REASON) == set(ALL_FAULT_KINDS)
    unregistered = set(EXPECTED_REASON.values()) - set(FAILURE_REASONS)
    assert not unregistered, f"injected reasons not registered: {sorted(unregistered)}"


def test_network_fault_reasons_cover_the_link_namespace():
    """The ``link-*`` reasons and the network fault classes are the same
    set: a new interconnect fault class must come with its taxonomy
    entry, and a new ``link-*`` reason must be injectable."""
    link_reasons = {r for r in FAILURE_REASONS if r.startswith("link-")}
    injectable = {EXPECTED_REASON[k] for k in NETWORK_FAULT_KINDS}
    assert injectable == link_reasons, (
        f"injectable {sorted(injectable)} != registered {sorted(link_reasons)}"
    )
    assert all(EXPECTED_REASON[k] == f"link-{k}" for k in NETWORK_FAULT_KINDS)


def test_assurance_fault_reasons_cover_the_assurance_namespace():
    """The continuous-assurance fault classes (shadow, snapshot, shed)
    map exactly onto the three assurance reasons — a new assurance
    mechanism must come with both its injectable fault class and its
    taxonomy entry."""
    injectable = {EXPECTED_REASON[k] for k in ASSURANCE_FAULT_KINDS}
    assert injectable == {"shadow-divergence", "snapshot-corrupt", "service-shed"}
    registered = injectable & set(FAILURE_REASONS)
    assert registered == injectable


def test_fabric_fault_reasons_cover_the_fabric_namespace():
    """The sharded-fabric fault classes (a crashing shard, a silent
    shard, a flooding tenant) map exactly onto the three fabric reasons,
    each registered — a new fabric failure mode must come with both its
    injectable fault class and its taxonomy entry."""
    injectable = {EXPECTED_REASON[k] for k in FABRIC_FAULT_KINDS}
    assert injectable == {
        "shard-dead", "shard-stalled", "tenant-quota-exceeded",
    }
    assert injectable <= set(FAILURE_REASONS)


def test_torture_fault_reasons_cover_the_adversarial_namespace():
    """The adversarial-guest fault classes (undecodable bytes,
    self-modification mid-trace, unknown indirect jumps, fetches off
    every segment) map onto registered reasons, and the three reasons
    this PR introduced are each reachable by injection — a new
    adversarial image class must come with its taxonomy entry."""
    injectable = {EXPECTED_REASON[k] for k in TORTURE_FAULT_KINDS}
    assert injectable == {
        "undecodable-instruction", "self-modifying-code",
        "indirect-jump", "fetch-out-of-bounds",
    }
    assert injectable <= set(FAILURE_REASONS)


def test_torture_classes_declare_positive_weights():
    """Every adversarial image class must participate in the seeded mix
    (a zero-weight class would silently drop out of the sweep)."""
    from repro.testing import TORTURE_CLASSES

    for kind, (builder, weight) in TORTURE_CLASSES.items():
        assert callable(builder), kind
        assert weight >= 1, f"class {kind!r} has weight {weight}"
