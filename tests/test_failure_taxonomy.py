"""The failure-reason taxonomy may not drift.

Three-way consistency between the code (every ``RewriteFailure(reason)``
literal under ``src/``), the registry (``repro.errors.FAILURE_REASONS``)
and the user docs (``docs/REWRITER.md``): no undocumented reasons, no
dead documented ones."""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import FAILURE_REASONS

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOCS = REPO / "docs" / "REWRITER.md"

#: Matches the reason literal of a RewriteFailure construction; ``\s*``
#: spans newlines, so multi-line call sites are covered too.
RAISE_PATTERN = re.compile(r"""RewriteFailure\(\s*["']([a-z0-9-]+)["']""")


def raised_reasons() -> set[str]:
    """Every reason constructed anywhere under src/."""
    reasons: set[str] = set()
    for path in SRC.rglob("*.py"):
        reasons |= set(RAISE_PATTERN.findall(path.read_text()))
    return reasons


def test_every_raised_reason_is_registered():
    """No RewriteFailure may use a reason missing from FAILURE_REASONS."""
    undocumented = raised_reasons() - set(FAILURE_REASONS)
    assert not undocumented, f"undocumented failure reasons: {sorted(undocumented)}"


def test_every_registered_reason_is_raised():
    """FAILURE_REASONS may not accumulate dead entries."""
    dead = set(FAILURE_REASONS) - raised_reasons()
    assert not dead, f"documented but never raised: {sorted(dead)}"


def test_docs_cover_every_reason():
    """docs/REWRITER.md must mention each reason as `reason` literal."""
    text = DOCS.read_text()
    missing = [r for r in FAILURE_REASONS if f"`{r}`" not in text]
    assert not missing, f"reasons missing from docs/REWRITER.md: {missing}"


def test_registry_descriptions_are_nonempty():
    """Each taxonomy entry carries a human-readable description."""
    for reason, description in FAILURE_REASONS.items():
        assert description.strip(), f"empty description for {reason!r}"
