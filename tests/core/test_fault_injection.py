"""Resilience under induced failure: fault injection, the degradation
ladder, the differential validation gate, quarantine and epoch guards.

The contract under test is the paper's Sec. III.G taken seriously: any
failure anywhere in the rewrite pipeline — including induced ones in
code paths that normally never fail — must surface as a tagged failed
``RewriteResult``, and the resilience layer must recover what is
recoverable (ladder), reject what is wrong (validation gate), and retry
what might heal (quarantine backoff)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.asm.assembler import assemble
from repro.core import (
    BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setpar, validate_variant,
)
from repro.core.dispatch import build_guard_stub, specialize_hot_param
from repro.core.manager import SpecializationManager
from repro.core.resilience import RewriteSupervisor
from repro.core.rewriter import RewriteResult
from repro.errors import FAILURE_REASONS
from repro.machine.vm import Machine
from repro.profiling.value_profile import FunctionProfile
from repro.testing import (
    EXPECTED_REASON, FAULT_KINDS, TORTURE_FAULT_KINDS, inject_fault,
    plan_faults,
)


def load_asm(machine: Machine, name: str, src: str) -> int:
    probe, _ = assemble(src, 0, extra_labels=dict(machine.image.symbols))
    addr = machine.image.add_function(name, b"\x00" * len(probe))
    code, _ = assemble(src, addr, extra_labels=dict(machine.image.symbols))
    machine.image.poke(addr, code)
    return addr


MUL2 = """
    mov rax, rdi
    imul rax, rsi
    ret
"""

# countdown loop: the counter starts from the KNOWN first parameter, so
# the trace unrolls it; the body accumulates the UNKNOWN second
# parameter, so each unrolled iteration emits real code
COUNTDOWN = """
    xor rax, rax
    mov rcx, rdi
loop:
    add rax, rsi
    sub rcx, 1
    cmp rcx, 0
    jne loop
    ret
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    load_asm(m, "mul2", MUL2)
    return m


def known2_conf(passes=()):
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    conf.passes = passes
    return conf


# ===================================================== injected fault classes
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_injected_fault_surfaces_as_tagged_result(machine, kind):
    """Every fault class becomes ok=False with its documented reason —
    no exception escapes ``brew_rewrite``."""
    conf = known2_conf(passes=("dce",) if kind == "pass" else ())
    with inject_fault(kind, nth=1) as injector:
        result = brew_rewrite(machine, conf, "mul2", 5, 7)
    assert injector.fired
    assert not result.ok
    assert result.reason == EXPECTED_REASON[kind]
    assert result.reason in FAILURE_REASONS
    assert "injected-fault" in result.message
    assert result.entry_or_original == result.original


@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_machine_still_rewrites_after_injection(machine, kind):
    """The patched seam is restored: the same rewrite succeeds right
    after the injection context exits, and the variant runs."""
    conf = known2_conf(passes=("dce",) if kind == "pass" else ())
    with inject_fault(kind, nth=1):
        brew_rewrite(machine, conf, "mul2", 5, 7)
    result = brew_rewrite(machine, known2_conf(), "mul2", 5, 7)
    assert result.ok, result.message
    assert machine.cpu.run(result.entry, 6, 7).uint_return == 42


def test_seeded_campaign_never_raises(machine):
    """A seeded sweep over all fault classes and call positions: every
    outcome is a RewriteResult; every fired fault is tagged correctly."""
    for injector in plan_faults(seed=1234, rounds=3, max_nth=5):
        conf = known2_conf(passes=("dce",) if injector.kind == "pass" else ())
        with injector:
            result = brew_rewrite(machine, conf, "mul2", 5, 7)
        assert isinstance(result, RewriteResult)
        if injector.fired:
            assert not result.ok
            assert result.reason == EXPECTED_REASON[injector.kind]
        else:  # nth beyond the calls this pipeline stage makes
            assert result.ok, result.message


def test_transient_fault_recovers_at_next_rung(machine):
    """A one-shot injected fault fails the base attempt; the ladder's
    next rung runs clean and the supervisor hands out a validated
    variant, recording the failed attempt."""
    supervisor = RewriteSupervisor(machine)
    with inject_fault("decode", nth=1) as injector:
        result = supervisor.rewrite(known2_conf(), "mul2", 5, 7)
    assert injector.fired
    assert result.ok, result.message
    assert result.ladder_rung == 1
    assert result.ladder_attempts == (("base", "decode-error"),)
    assert result.validated
    assert machine.cpu.run(result.entry, 6, 7).uint_return == 42


# =========================================================== ladder recovery
def test_ladder_recovers_buffer_full(machine):
    """Acceptance: a seeded buffer-full scenario (unrollable countdown
    loop under a tight output budget) fails the base config and recovers
    at a more conservative rung."""
    load_asm(machine, "addn", COUNTDOWN)
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    conf.max_output_instructions = 60
    conf.variant_threshold = 100_000  # no migration rescue: unrolling explodes

    plain = brew_rewrite(machine, conf, "addn", 400, 3)
    assert not plain.ok and plain.reason == "buffer-full"

    supervisor = RewriteSupervisor(machine)
    result = supervisor.rewrite(conf, "addn", 400, 3)
    assert result.ok, result.message
    assert result.ladder_rung > 0
    assert all(reason == "buffer-full" for _, reason in result.ladder_attempts)
    assert result.validated
    assert machine.cpu.run(result.entry, 400, 3).uint_return == 1200
    stats = supervisor.stats()
    assert stats["ladder_recoveries"] == 1
    assert stats["fallbacks"] == 0
    assert stats["attempts"] == len(result.ladder_attempts) + 1


def test_ladder_exhaustion_reports_last_failure(machine):
    """A rewrite no rung can save (deadline 0 on every attempt) walks the
    whole ladder and reports the terminal failure with full history."""
    supervisor = RewriteSupervisor(machine, deadline_seconds=0.0)
    result = supervisor.rewrite(known2_conf(), "mul2", 5, 7)
    assert not result.ok
    assert result.reason == "deadline-exceeded"
    assert len(result.ladder_attempts) == len(supervisor.ladder) + 1
    assert supervisor.stats()["fallbacks"] == 1
    assert supervisor.fallback_rate == 1.0


def test_injected_clock_expires_deadline_deterministically(machine):
    """Satellite: `RewriteSupervisor(clock=...)` threads a fake clock
    through `rewrite` into the tracer, so deadline expiry is a
    deterministic function of traced instructions, not a wall-clock
    race.  Two identical runs walk identical ladders."""
    load_asm(machine, "addn", COUNTDOWN)

    def run_once():
        ticks = {"n": 0}

        def clock() -> float:
            ticks["n"] += 1
            return float(ticks["n"])  # one fake second per consultation

        conf = brew_init_conf()
        brew_setpar(conf, 1, BREW_KNOWN)
        supervisor = RewriteSupervisor(machine, deadline_seconds=0.5, clock=clock)
        result = supervisor.rewrite(conf, "addn", 400, 3)
        return result, ticks["n"]

    first, ticks_a = run_once()
    second, ticks_b = run_once()
    assert not first.ok and first.reason == "deadline-exceeded"
    assert first.ladder_attempts == second.ladder_attempts
    assert ticks_a == ticks_b > 0
    # a generous fake deadline lets the same rewrite succeed: the clock
    # is genuinely what decides
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    relaxed = RewriteSupervisor(
        machine, deadline_seconds=1e9, clock=lambda: 0.0
    )
    assert relaxed.rewrite(conf, "addn", 400, 3).ok


def test_non_retryable_reason_stops_the_ladder(machine):
    """bad-argument cannot improve at a lower rung: one attempt only."""
    supervisor = RewriteSupervisor(machine)
    result = supervisor.rewrite(known2_conf(), "mul2", "not-an-int", 7)
    assert not result.ok
    assert result.reason == "bad-argument"
    assert len(result.ladder_attempts) == 1
    assert supervisor.stats()["attempts"] == 1


# ========================================================== validation gate
def test_validation_gate_rejects_corrupted_variant(machine):
    """Acceptance: a deliberately-corrupted variant (patched to return a
    constant) is caught by the differential gate."""
    conf = known2_conf()
    result = brew_rewrite(machine, conf, "mul2", 5, 7)
    assert result.ok
    assert validate_variant(machine, conf, result, (5, 7)) is None

    bad, _ = assemble("mov rax, 999\nret", result.entry)
    machine.image.poke(result.entry, bad)
    machine.cpu.invalidate_icache()
    mismatch = validate_variant(machine, conf, result, (5, 7))
    assert mismatch is not None and "diverged" in mismatch


def test_supervisor_discards_corrupted_variants(machine, monkeypatch):
    """End to end: when every emitted variant is corrupted, the
    supervisor walks the ladder discarding each one and reports a
    terminal ``validation-failed`` — the caller keeps the original."""
    import repro.core.resilience as resilience_mod

    real_rewrite = resilience_mod.rewrite

    def corrupting_rewrite(m, conf, fn, *args):
        result = real_rewrite(m, conf, fn, *args)
        if result.ok:
            bad, _ = assemble("mov rax, 999\nret", result.entry)
            m.image.poke(result.entry, bad)
            m.cpu.invalidate_icache()
        return result

    monkeypatch.setattr(resilience_mod, "rewrite", corrupting_rewrite)
    supervisor = RewriteSupervisor(machine)
    result = supervisor.rewrite(known2_conf(), "mul2", 5, 7)
    assert not result.ok
    assert result.reason == "validation-failed"
    assert result.entry_or_original == result.original
    stats = supervisor.stats()
    assert stats["validation_failures"] == len(supervisor.ladder) + 1
    assert stats["fallbacks"] == 1


def test_validation_perturbs_only_unknown_params(machine):
    """KNOWN parameters keep their traced value during validation — a
    variant specialized on them must not be compared on other values."""
    # rsi is KNOWN=7 and baked in; perturbing it would falsely reject
    conf = known2_conf()
    supervisor = RewriteSupervisor(machine, validation_vectors=8, validation_seed=3)
    result = supervisor.rewrite(conf, "mul2", 5, 7)
    assert result.ok and result.validated


# ===================================================== quarantine and backoff
def test_quarantined_failure_served_then_retried_after_backoff(machine):
    """Acceptance: a cached failure is served while its backoff window is
    open and retried once the (injected) clock passes ``retry_at``."""
    now = [0.0]
    calls = Counter()

    def flaky_rewrite(conf, fn, *args):
        calls["rewrites"] += 1
        if calls["rewrites"] == 1:  # one-shot fault on the first attempt
            with inject_fault("decode", nth=1):
                return brew_rewrite(machine, conf, fn, *args)
        return brew_rewrite(machine, conf, fn, *args)

    manager = SpecializationManager(
        machine, rewrite_fn=flaky_rewrite, backoff_seconds=0.5,
        clock=lambda: now[0],
    )
    conf = known2_conf()
    first = manager.get(conf, "mul2", 5, 7)
    assert not first.ok and first.reason == "decode-error"

    # inside the backoff window: the failure is served from quarantine
    now[0] = 0.4
    again = manager.get(conf, "mul2", 5, 7)
    assert again is first
    assert calls["rewrites"] == 1
    stats = manager.stats()
    assert stats["quarantine_hits"] == 1 and stats["quarantined"] == 1

    # window expired: retried, heals, and the success replaces the entry
    now[0] = 0.6
    healed = manager.get(conf, "mul2", 5, 7)
    assert healed.ok
    assert calls["rewrites"] == 2
    stats = manager.stats()
    assert stats["quarantine_retries"] == 1 and stats["quarantined"] == 0
    assert machine.cpu.run(healed.entry, 6, 7).uint_return == 42


def test_repeated_failures_back_off_exponentially(machine):
    """Each consecutive failure doubles the quarantine window."""
    now = [0.0]
    manager = SpecializationManager(
        machine, backoff_seconds=1.0, clock=lambda: now[0],
    )
    conf = brew_init_conf()
    # a permanently-failing rewrite: boolean argument -> bad-argument
    manager.get(conf, "mul2", True, 7)
    entry = next(iter(manager._cache.values()))
    assert entry.fail_count == 1 and entry.retry_at == pytest.approx(1.0)

    now[0] = 1.5  # past the first window: retry fails again, window doubles
    manager.get(conf, "mul2", True, 7)
    entry = next(iter(manager._cache.values()))
    assert entry.fail_count == 2 and entry.retry_at == pytest.approx(1.5 + 2.0)


def test_unhashable_example_args_fail_gracefully(machine):
    """A list/dict example argument must not raise a raw TypeError out
    of the cache key — it becomes the rewriter's bad-argument result."""
    manager = SpecializationManager(machine)
    result = manager.get(brew_init_conf(), "mul2", [1, 2], {"a": 3})
    assert not result.ok and result.reason == "bad-argument"
    # and the failure is cached under the fingerprinted key
    again = manager.get(brew_init_conf(), "mul2", [1, 2], {"a": 3})
    assert again is result


# ================================================== epoch guards in dispatch
def test_epoch_guard_falls_back_after_invalidation(machine):
    """A guard stub carrying the manager's epoch dispatches to the
    variant while fresh and to the original once known memory was
    invalidated — even if the stale variant is garbage by then."""
    manager = SpecializationManager(machine)
    conf = known2_conf()
    result = manager.get(conf, "mul2", 5, 7)
    assert result.ok
    stub = build_guard_stub(
        machine, "mul2", 2, 7, result.entry,
        epoch_cell=manager.epoch_cell, epoch=manager.epoch,
    )
    assert machine.cpu.run(stub, 6, 7).uint_return == 42   # via variant
    assert machine.cpu.run(stub, 6, 8).uint_return == 48   # via original

    # invalidate: epoch bumps; then corrupt the stale variant to prove
    # the stub no longer reaches it
    manager.invalidate_memory(0, 2**48)
    bad, _ = assemble("mov rax, 999\nret", result.entry)
    machine.image.poke(result.entry, bad)
    machine.cpu.invalidate_icache()
    assert machine.cpu.run(stub, 6, 7).uint_return == 42   # via original


def test_specialize_hot_param_pads_to_profile_width(machine):
    """Satellite fix: example args are padded to cover both the guarded
    slot and every profiled parameter, in all branches."""
    profile = FunctionProfile(
        calls=10, values={1: Counter({7: 10}), 3: Counter({2: 10})}
    )

    class Recorder:
        """Captures the argument vector the rewrite is invoked with."""

        def __init__(self):
            self.args = None

        def rewrite(self, conf, fn, *args):
            self.args = args
            return RewriteResult(ok=False, original=0, reason="internal")

    # short example_args used to skip padding to the profile width
    recorder = Recorder()
    specialize_hot_param(
        machine, "mul2", profile, 1, example_args=(9,), supervisor=recorder
    )
    assert recorder.args == (7, 0, 0)

    recorder = Recorder()
    specialize_hot_param(machine, "mul2", profile, 1, supervisor=recorder)
    assert recorder.args == (7, 0, 0)


# ================================================ adversarial-guest classes
# the four torture fault kinds (PR 6): each patches a tracer seam that a
# hostile guest exercises organically — undecodable bytes, stores into
# executable segments, unknowable jump targets, fetches off the image

# a direct jump, so the _do_jmp seam is reached
JUMPY = """
    mov rax, rdi
    imul rax, rsi
    jmp done
done:
    ret
"""

# an absolute store (into the data segment), so the tracer's
# store-hits-code check is reached; rdi stays unknown under known2_conf
STOREY = """
    mov [4194304], rdi
    mov rax, rdi
    imul rax, rsi
    ret
"""

#: kind -> (function name, source) exercising that seam.
TORTURE_KIND_GUESTS = {
    "undecodable": ("mul2", None),
    "self-modify-mid-trace": ("storey", STOREY),
    "indirect-jump-unknown": ("jumpy", JUMPY),
    "segment-escape": ("mul2", None),
}


@pytest.mark.parametrize("kind", TORTURE_FAULT_KINDS)
def test_adversarial_fault_surfaces_as_tagged_result(machine, kind):
    """Every adversarial-guest fault class becomes ok=False with its
    documented reason — no exception escapes ``brew_rewrite``."""
    name, src = TORTURE_KIND_GUESTS[kind]
    if src is not None:
        load_asm(machine, name, src)
    with inject_fault(kind, nth=1) as injector:
        result = brew_rewrite(machine, known2_conf(), name, 5, 7)
    assert injector.fired
    assert not result.ok
    assert result.reason == EXPECTED_REASON[kind]
    assert result.reason in FAILURE_REASONS
    assert result.entry_or_original == result.original


@pytest.mark.parametrize("kind", TORTURE_FAULT_KINDS)
def test_adversarial_seam_is_restored_after_injection(machine, kind):
    """The patched seam is gone once the context exits: the identical
    rewrite succeeds and the variant computes the right product."""
    name, src = TORTURE_KIND_GUESTS[kind]
    if src is not None:
        load_asm(machine, name, src)
    with inject_fault(kind, nth=1):
        brew_rewrite(machine, known2_conf(), name, 5, 7)
    result = brew_rewrite(machine, known2_conf(), name, 5, 7)
    assert result.ok, result.message
    assert machine.cpu.run(result.entry, 6, 7).uint_return == 42
