"""C-flavoured API surface tests (Figures 2/3/5 parity) and per-function
configuration corners."""

from __future__ import annotations

import pytest

from repro.core import (
    BREW_KNOWN, BREW_PTR_TO_KNOWN, BREW_UNKNOWN,
    brew_init_conf, brew_rewrite, brew_setfunc, brew_setmem, brew_setpar,
)
from repro.core.config import RewriteConfig
from repro.machine.vm import Machine


def test_init_conf_returns_fresh_configs():
    a, b = brew_init_conf(), brew_init_conf()
    brew_setpar(a, 1, BREW_KNOWN)
    assert b.function(None).params == {}


def test_setpar_rejects_zero_based_indices():
    with pytest.raises(ValueError):
        brew_setpar(brew_init_conf(), 0, BREW_KNOWN)


def test_setmem_validates_range_and_kind():
    conf = brew_init_conf()
    with pytest.raises(ValueError):
        brew_setmem(conf, 100, 100)
    with pytest.raises(ValueError):
        brew_setmem(conf, 0, 8, BREW_UNKNOWN)
    brew_setmem(conf, 0x1000, 0x1010)
    assert conf.memory_is_known(0x1000)
    assert conf.memory_is_known(0x1008)
    assert not conf.memory_is_known(0x100C)  # 8 bytes would cross the end


def test_setfunc_unknown_option_rejected():
    with pytest.raises(ValueError):
        brew_setfunc(brew_init_conf(), None, no_such_option=True)


def test_per_function_configs_are_independent():
    conf = RewriteConfig()
    conf.set_function(0x1000, inline=False)
    assert conf.function(0x1000).inline is False
    assert conf.function(0x2000).inline is True
    assert conf.function(None).inline is True


def test_figure3_semantics_known_param_ignored_at_call():
    """Figure 3: '// ignores value 1' — the rewritten function uses the
    baked-in value regardless of what the caller passes."""
    m = Machine()
    m.load("noinline long func(long a, long b) { return a * 100 + b; }")
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    result = brew_rewrite(m, conf, "func", 42, 2)
    assert result.ok
    assert m.call(result.entry, 1, 2).int_return == 42 * 100 + 2
    assert m.call(result.entry, 999, 7).int_return == 42 * 100 + 7


def test_forced_unknown_param_on_inlined_callee():
    """brew_setpar(fn, i, BREW_UNKNOWN) prevents the callee from being
    specialized on a known argument (the makeDynamic alternative done
    through configuration)."""
    m = Machine()
    m.load("""
    noinline long inner(long x, long n) {
        long t = 0;
        for (long i = 0; i < x; i++) t += n;
        return t;
    }
    noinline long outer(long n) { return inner(6, n); }
    """)
    # default: inner's x=6 is known -> loop fully unrolls inside outer
    plain = brew_rewrite(m, brew_init_conf(), "outer", 0)
    assert plain.ok
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_UNKNOWN, fn_addr=m.symbol("inner"))
    guarded = brew_rewrite(m, conf, "outer", 0)
    assert guarded.ok
    # both correct
    for n in (0, 3, 9):
        assert m.call(plain.entry, n).int_return == 6 * n
        assert m.call(guarded.entry, n).int_return == 6 * n
    # the forced-unknown version kept the loop -> more blocks
    assert guarded.stats.blocks > plain.stats.blocks


def test_ptr_to_known_range_is_bounded_by_segment():
    m = Machine()
    m.load("noinline long f(long *p) { return p[0]; }")
    buf = m.image.malloc(16)
    m.memory.write_u64(buf, 77)
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_PTR_TO_KNOWN)
    result = brew_rewrite(m, conf, "f", buf)
    assert result.ok
    assert m.call(result.entry, buf).int_return == 77
    start, end = conf.known_memory[-1]
    assert start == buf
    assert end <= m.image.seg_heap.end


def test_rewrite_accepts_bare_image():
    from repro.core.rewriter import rewrite

    m = Machine()
    m.load("noinline long f(long a) { return a + 1; }")
    result = rewrite(m.image, brew_init_conf(), "f", 0)
    assert result.ok
    m.cpu.invalidate_icache()
    assert m.call(result.entry, 1).int_return == 2


def test_result_names_are_unique_and_symbolized():
    m = Machine()
    m.load("noinline long f(long a) { return a; }")
    r1 = brew_rewrite(m, brew_init_conf(), "f", 0)
    r2 = brew_rewrite(m, brew_init_conf(), "f", 0)
    assert r1.name != r2.name
    assert m.symbol(r1.name) == r1.entry
    assert m.symbol(r2.name) == r2.entry
