"""Crash-forensics bundles: capture, canonical persistence, corruption
containment, and the capture seams on every layer."""

from __future__ import annotations

import pytest

from repro.core import BREW_KNOWN, BREW_UNKNOWN, brew_init_conf, brew_setpar
from repro.core.forensics import (
    BUNDLE_MAGIC,
    CrashBundle,
    ForensicsHub,
    bundle_fingerprint,
    capture_machine,
    conf_fingerprint,
    conf_from_doc,
    conf_to_doc,
    load_bundle,
    restore_machine,
    save_bundle,
)
from repro.core.resilience import RewriteSupervisor
from repro.errors import RewriteFailure
from repro.machine.vm import Machine
from repro.obs import Metrics
from repro.testing import FaultInjector

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
"""


def _conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    return conf


def _rewrite_failure_hub(**hub_kwargs):
    """One organic terminal failure (bad-pass) captured through the
    supervisor seam."""
    machine = Machine()
    machine.load(SOURCE)
    hub = ForensicsHub(**hub_kwargs)
    supervisor = RewriteSupervisor(machine, forensics=hub)
    conf = _conf()
    conf.passes = ("no-such-pass",)
    supervisor.rewrite(conf, "poly", 5, 3)
    return hub


# ------------------------------------------------------------ fingerprint
def test_fingerprint_is_order_insensitive_canonical_json():
    a = bundle_fingerprint("torture", "decode-error", {"x": 1, "y": [2, 3]})
    b = bundle_fingerprint("torture", "decode-error", {"y": [2, 3], "x": 1})
    c = bundle_fingerprint("torture", "decode-error", {"x": 1, "y": [2, 4]})
    assert a == b
    assert a != c


# ----------------------------------------------------- conf round-tripping
def test_conf_document_round_trips_including_fingerprint():
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    brew_setpar(conf, 2, BREW_UNKNOWN)
    conf.inline = False
    doc = conf_to_doc(conf)
    rebuilt = conf_from_doc(doc)
    assert conf_to_doc(rebuilt) == doc
    assert conf_fingerprint(rebuilt) == conf_fingerprint(conf)


def test_conf_document_never_replays_wall_clock_deadlines():
    conf = _conf()
    conf.deadline_seconds = 0.5
    rebuilt = conf_from_doc(conf_to_doc(conf))
    assert rebuilt.deadline_seconds is None


def test_broken_conf_document_is_bundle_corrupt():
    with pytest.raises(RewriteFailure) as exc:
        conf_from_doc({"functions": "not-a-list"})
    assert exc.value.reason == "bundle-corrupt"


# ------------------------------------------------- machine capture/restore
def test_machine_restore_is_bit_identical_under_capture():
    machine = Machine()
    machine.load(SOURCE)
    machine.image.add_function("scratch", b"\x90" * 16)
    doc = capture_machine(machine)
    restored = restore_machine(doc)
    assert capture_machine(restored) == doc
    assert restored.image.resolve("poly") == machine.image.resolve("poly")
    assert restored.image.resolve("scratch") == machine.image.resolve("scratch")


def test_machine_restore_rejects_out_of_layout_segments():
    machine = Machine()
    machine.load(SOURCE)
    doc = capture_machine(machine)
    doc["segments"][0]["base"] += 8
    with pytest.raises(RewriteFailure) as exc:
        restore_machine(doc)
    assert exc.value.reason == "bundle-corrupt"


# --------------------------------------------------------- save/load disk
def test_bundle_save_load_round_trip(tmp_path):
    hub = _rewrite_failure_hub()
    bundle = hub.bundles[0]
    path = save_bundle(bundle, tmp_path / "crash.rbundle")
    assert path.read_text().splitlines()[0] == BUNDLE_MAGIC
    loaded = load_bundle(path)
    assert loaded.kind == bundle.kind == "rewrite-failure"
    assert loaded.reason == bundle.reason == "bad-pass"
    assert loaded.fingerprint == bundle.fingerprint
    assert loaded.evidence == bundle.evidence
    assert loaded.conf == bundle.conf
    assert loaded.conf_fp == bundle.conf_fp
    assert loaded.requests == bundle.requests
    assert loaded.machine == bundle.machine
    assert loaded.settings == bundle.settings
    assert loaded.journal == bundle.journal


def test_bad_magic_rejects_the_whole_bundle(tmp_path):
    path = tmp_path / "crash.rbundle"
    path.write_text("REPRO-BUNDLE 999\n")
    with pytest.raises(RewriteFailure) as exc:
        load_bundle(path)
    assert exc.value.reason == "bundle-corrupt"


def test_corrupt_structural_record_rejects_the_whole_bundle(tmp_path):
    """The `bundle` fault class bit-rots the Nth encoded record; record
    1 is the meta header, without which a replay would be guesswork."""
    hub = _rewrite_failure_hub()
    path = tmp_path / "crash.rbundle"
    with FaultInjector("bundle", nth=1):
        save_bundle(hub.bundles[0], path)
    with pytest.raises(RewriteFailure) as exc:
        load_bundle(path)
    assert exc.value.reason == "bundle-corrupt"


def test_corrupt_diagnostics_record_is_contained_per_record(tmp_path):
    """The final record is the metrics snapshot — diagnostics.  Rotting
    it must not block the replay: it is dropped and counted."""
    hub = _rewrite_failure_hub()
    clean = tmp_path / "clean.rbundle"
    save_bundle(hub.bundles[0], clean)
    records = len(clean.read_text().splitlines()) - 1  # minus magic
    rotten = tmp_path / "rotten.rbundle"
    with FaultInjector("bundle", nth=records):
        save_bundle(hub.bundles[0], rotten)
    loaded = load_bundle(rotten)
    assert loaded.settings["corrupt_records_dropped"] == 1
    assert loaded.metrics == {}
    assert loaded.fingerprint == hub.bundles[0].fingerprint


def test_snapshot_fault_class_cannot_rot_bundles(tmp_path):
    """forensics imported persist's record codec by value: the
    `snapshot` fault class (which patches the persist module) must not
    leak into bundle writes — the seams stay independently testable."""
    hub = _rewrite_failure_hub()
    path = tmp_path / "crash.rbundle"
    with FaultInjector("snapshot", nth=1):
        save_bundle(hub.bundles[0], path)
    assert load_bundle(path).fingerprint == hub.bundles[0].fingerprint


def test_unknown_record_kind_rejects_the_bundle(tmp_path):
    from repro.core.forensics import _encode_record

    hub = _rewrite_failure_hub()
    path = tmp_path / "crash.rbundle"
    save_bundle(hub.bundles[0], path)
    with path.open("a") as fh:
        fh.write(_encode_record({"kind": "surprise"}) + "\n")
    with pytest.raises(RewriteFailure) as exc:
        load_bundle(path)
    assert exc.value.reason == "bundle-corrupt"


def test_atomic_write_leaves_no_tmp_file(tmp_path):
    hub = _rewrite_failure_hub()
    save_bundle(hub.bundles[0], tmp_path / "crash.rbundle")
    assert [p.name for p in tmp_path.iterdir()] == ["crash.rbundle"]


# ----------------------------------------------------------------- the hub
def test_hub_charges_capture_counters_and_bounds_retention():
    metrics = Metrics()
    hub = ForensicsHub(metrics=metrics, keep=2)
    for tick in range(3):
        hub.capture_fabric_death(
            shard=tick, cause="crash: test", tick=float(tick), moved=[],
            live=[9], seed=7, suspect_after=2.0, dead_after=4.0,
        )
    assert metrics.value("forensics.captures") == 3
    assert metrics.value("forensics.captures.fabric-shard-death") == 3
    assert len(hub.bundles) == 2, "retention is bounded by keep"
    assert hub.bundles[0].evidence["shard"] == 1, "oldest evicted first"


def test_hub_persists_bundles_to_out_dir(tmp_path):
    hub = _rewrite_failure_hub(out_dir=tmp_path, metrics=Metrics())
    assert len(hub.saved) == 1
    assert hub.saved[0].name == "bundle-0001-rewrite-failure.rbundle"
    assert load_bundle(hub.saved[0]).fingerprint == hub.bundles[0].fingerprint
    assert hub.metrics.value("forensics.saved") == 1


def test_capture_embeds_the_flight_recorder_tail():
    hub = _rewrite_failure_hub(journal_tail=4)
    bundle = hub.bundles[0]
    assert 0 < len(bundle.journal) <= 4
    assert all(row["channel"] == "rewrite" for row in bundle.journal)
    assert {row["event"] for row in bundle.journal} <= {"ladder-attempt"}


def test_sealed_bundles_carry_a_recomputable_fingerprint():
    bundle = CrashBundle(kind="torture", reason="decode-error",
                         evidence={"spec": {"index": 0}}).seal()
    assert bundle.fingerprint == bundle_fingerprint(
        "torture", "decode-error", {"spec": {"index": 0}})
