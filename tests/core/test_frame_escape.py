"""Frame-escape analysis tests (World.escaped): the soundness boundary
between "unknown stores cannot touch my frame" and "all bets are off".
"""

from __future__ import annotations

import pytest

from repro.core import (
    BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar,
)
from repro.core.known import StackRel, World, generalize, migration_mismatch
from repro.isa.registers import GPR
from repro.machine.vm import Machine


# ------------------------------------------------------------- lattice laws
def test_generalize_ors_escape_flags():
    a, b = World.entry_world(), World.entry_world()
    assert not generalize(a, b).escaped
    a.escaped = True
    assert generalize(a, b).escaped
    assert generalize(b, a).escaped


def test_demoting_stackrel_escapes():
    a, b = World.entry_world(), World.entry_world()
    a.regs[GPR.RBX] = StackRel(-16)   # frame address known on one path only
    g = generalize(a, b)
    assert g.regs[GPR.RBX] is None
    assert g.escaped


def test_escaped_source_cannot_migrate_into_clean_target():
    src, dst = World.entry_world(), World.entry_world()
    src.escaped = True
    assert any("escape" in p for p in migration_mismatch(src, dst))
    # the other direction is fine (dst is merely conservative)
    assert migration_mismatch(dst, src) == []


def test_digest_distinguishes_escape():
    a, b = World.entry_world(), World.entry_world()
    a.escaped = True
    assert a.digest() != b.digest()


# -------------------------------------------------------- end-to-end effects
def test_unknown_store_does_not_destroy_frame_knowledge():
    """A store through an unknown pointer inside a loop must not force the
    frame spills live (the regression that motivated the analysis: the
    pre-escape behaviour re-loaded rbp from a dirty cell and lost the
    symbolic stack)."""
    m = Machine()
    m.load("""
    noinline void fill(double *out, long n, double v) {
        for (long i = 0; i < n; i++)
            out[i] = v + (double)i;
    }
    """)
    result = brew_rewrite(m, brew_init_conf(), "fill", 0, 0, 0.0)
    assert result.ok, result.message
    buf = m.image.malloc(8 * 8)
    m.call(result.entry, buf, 8, 1.5)
    assert [m.memory.read_f64(buf + 8 * i) for i in range(8)] == [1.5 + i for i in range(8)]


def test_address_of_local_passed_to_kept_call_is_sound():
    """&local handed to a non-inlined callee: the frame escapes, the
    callee's write through the pointer must be visible afterwards."""
    m = Machine()
    m.load("""
    noinline void bump(long *p) { *p = *p + 5; }
    noinline long f(long a) {
        long v = a;
        bump(&v);
        return v;
    }
    """)
    conf = brew_init_conf()
    brew_setfunc(conf, m.symbol("bump"), inline=False)
    result = brew_rewrite(m, conf, "f", 0)
    assert result.ok, result.message
    for a in (0, 7, -3):
        assert m.call(result.entry, a).int_return == a + 5


def test_address_of_local_with_known_value_and_kept_call():
    """Known local whose address escapes: the value must be materialized
    before the call so the callee reads the real thing."""
    m = Machine()
    m.load("""
    noinline long read_it(long *p) { return *p; }
    noinline long f(long unused) {
        long v = 1234;
        return read_it(&v);
    }
    """)
    conf = brew_init_conf()
    brew_setfunc(conf, m.symbol("read_it"), inline=False)
    result = brew_rewrite(m, conf, "f", 0)
    assert result.ok, result.message
    assert m.call(result.entry, 0).int_return == 1234


def test_escaped_pointer_aliasing_after_store():
    """The conservative side: once &local is stored into the heap, an
    unknown-pointer store may alias the frame — the rewritten code must
    still compute correctly when it actually does."""
    m = Machine()
    m.load("""
    long slot = 0;
    noinline void poke(long *p, long v) { *p = v; }
    noinline long f(long a) {
        long v = 10;
        slot = (long)&v;          // the frame address escapes
        poke((long*)slot, a);     // aliases v through the escaped pointer
        return v;
    }
    """)
    conf = brew_init_conf()
    brew_setfunc(conf, m.symbol("poke"), inline=False)
    result = brew_rewrite(m, conf, "f", 0)
    assert result.ok, result.message
    for a in (1, 42, -9):
        assert m.call(result.entry, a).int_return == a


def test_escaped_alias_with_inlined_writer():
    """Same aliasing story with the writer inlined: the unknown-address
    store inside the trace must invalidate the (escaped) frame cell."""
    m = Machine()
    m.load("""
    long slot = 0;
    noinline long f(long a) {
        long v = 10;
        slot = (long)&v;
        long *p = (long*)slot;
        *p = a;
        return v;
    }
    """)
    result = brew_rewrite(m, brew_init_conf(), "f", 0)
    assert result.ok, result.message
    for a in (1, 42, -9):
        assert m.call(result.entry, a).int_return == a
