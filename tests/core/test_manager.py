"""SpecializationManager and multi-guard dispatch tests."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.core.dispatch import build_multi_guard_stub
from repro.core.manager import SpecializationManager
from repro.core.rewriter import RewriteResult, rewrite
from repro.machine.vm import Machine

SOURCE = """
struct Cfg { long scale; long bias; };
noinline long apply_cfg(long x, struct Cfg *c) { return x * c->scale + c->bias; }
noinline long poly(long x, long k) { return x * k + k; }
"""


@pytest.fixture()
def setup():
    m = Machine()
    m.load(SOURCE)
    return m, SpecializationManager(m)


def test_cache_hit_on_repeat(setup):
    m, mgr = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r1 = mgr.get(conf, "poly", 0, 3)
    r2 = mgr.get(conf, "poly", 0, 3)
    assert r1.ok and r1.entry == r2.entry
    assert mgr.hits == 1 and mgr.misses == 1 and len(mgr) == 1


def test_different_args_are_different_variants(setup):
    m, mgr = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r3 = mgr.get(conf, "poly", 0, 3)
    r4 = mgr.get(conf, "poly", 0, 4)
    assert r3.entry != r4.entry
    assert m.call(r3.entry, 5, 3).int_return == 5 * 3 + 3
    assert m.call(r4.entry, 5, 4).int_return == 5 * 4 + 4


def test_known_memory_mutation_invalidates(setup):
    m, mgr = setup
    cfg = m.image.malloc(16)
    m.memory.write_u64(cfg, 2)       # scale
    m.memory.write_u64(cfg + 8, 10)  # bias
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    r1 = mgr.get(conf, "apply_cfg", 0, cfg)
    assert r1.ok
    assert m.call(r1.entry, 5, cfg).int_return == 20
    # same descriptor content: cache hit
    assert mgr.get(conf, "apply_cfg", 0, cfg).entry == r1.entry
    # mutate the descriptor: stale entry is dropped, new variant built
    m.memory.write_u64(cfg, 7)
    r2 = mgr.get(conf, "apply_cfg", 0, cfg)
    assert r2.entry != r1.entry
    assert m.call(r2.entry, 5, cfg).int_return == 45


def test_invalidate_memory_by_range(setup):
    m, mgr = setup
    cfg = m.image.malloc(16)
    m.memory.write_u64(cfg, 3)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    mgr.get(conf, "apply_cfg", 0, cfg)
    assert len(mgr) == 1
    assert mgr.invalidate_memory(cfg, cfg + 8) == 1
    assert len(mgr) == 0
    # non-overlapping invalidation is a no-op (the PTR_TO_KNOWN extent
    # spans 64 KiB, so go well beyond it)
    mgr.get(conf, "apply_cfg", 0, cfg)
    far = cfg + 1_000_000
    assert mgr.invalidate_memory(far, far + 8) == 0


def test_invalidate_function(setup):
    m, mgr = setup
    c1, c2 = brew_init_conf(), brew_init_conf()
    brew_setpar(c1, 2, BREW_KNOWN)
    brew_setpar(c2, 1, BREW_KNOWN)
    mgr.get(c1, "poly", 0, 3)
    mgr.get(c2, "poly", 9, 0)
    assert len(mgr) == 2
    assert mgr.invalidate_function("poly") == 2


def test_failures_are_cached(setup):
    m, mgr = setup
    conf = brew_init_conf()
    conf.max_output_instructions = 1
    r1 = mgr.get(conf, "poly", 0, 0)
    r2 = mgr.get(conf, "poly", 0, 0)
    assert not r1.ok and r1 is r2
    assert mgr.misses == 1 and mgr.hits == 1


class _FlakyRewriter:
    """A ``rewrite_fn`` stub: fails while ``failing`` is set, then
    delegates to the real pipeline — same cache key, different outcome,
    which is exactly the quarantine re-admission scenario."""

    def __init__(self, machine):
        self.machine = machine
        self.failing = True
        self.calls = 0

    def __call__(self, conf, fn, *args):
        self.calls += 1
        if self.failing:
            return RewriteResult(
                ok=False, original=self.machine.image.resolve(fn),
                reason="internal", message="injected flaky failure",
            )
        return rewrite(self.machine, conf, fn, *args)


def _quarantine_setup(backoff=10.0):
    m = Machine()
    m.load(SOURCE)
    now = [1000.0]
    flaky = _FlakyRewriter(m)
    mgr = SpecializationManager(
        m, rewrite_fn=flaky, backoff_seconds=backoff, clock=lambda: now[0]
    )
    return m, mgr, flaky, now


def test_quarantine_refused_before_backoff_expires():
    m, mgr, flaky, now = _quarantine_setup(backoff=10.0)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r1 = mgr.get(conf, "poly", 0, 3)
    assert not r1.ok and flaky.calls == 1
    # inside the window: the cached failure is served, no new attempt
    now[0] += 9.999
    r2 = mgr.get(conf, "poly", 0, 3)
    assert r2 is r1 and flaky.calls == 1
    assert mgr.quarantine_hits == 1 and mgr.quarantine_retries == 0


def test_quarantine_retried_after_backoff_and_window_doubles():
    m, mgr, flaky, now = _quarantine_setup(backoff=10.0)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    mgr.get(conf, "poly", 0, 3)             # failure #1, window = 10
    now[0] += 10.0
    mgr.get(conf, "poly", 0, 3)             # retried -> failure #2
    assert flaky.calls == 2 and mgr.quarantine_retries == 1
    # the window doubled to 20: refused at +19.999, retried at +20
    now[0] += 19.999
    mgr.get(conf, "poly", 0, 3)
    assert flaky.calls == 2 and mgr.quarantine_hits == 1
    now[0] += 0.001
    mgr.get(conf, "poly", 0, 3)             # retried -> failure #3
    assert flaky.calls == 3 and mgr.quarantine_retries == 2
    # and doubles again (40) from the time of failure #3
    now[0] += 39.999
    mgr.get(conf, "poly", 0, 3)
    assert flaky.calls == 3 and mgr.quarantine_hits == 2


def test_quarantine_readmission_after_recovery():
    m, mgr, flaky, now = _quarantine_setup(backoff=10.0)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    assert not mgr.get(conf, "poly", 0, 3).ok
    flaky.failing = False                   # the underlying cause is fixed
    # still refused until the window expires — quarantine holds
    now[0] += 5.0
    assert not mgr.get(conf, "poly", 0, 3).ok
    assert flaky.calls == 1
    # after expiry the retry goes through and the key is re-admitted
    now[0] += 5.0
    r = mgr.get(conf, "poly", 0, 3)
    assert r.ok and flaky.calls == 2
    assert m.call(r.entry, 5, 3).int_return == 5 * 3 + 3
    # and subsequent calls are plain cache hits, no more quarantine
    assert mgr.get(conf, "poly", 0, 3) is r
    assert mgr.stats()["quarantined"] == 0


def test_multi_guard_chain(setup):
    m, mgr = setup
    cases = []
    for k in (3, 4, 7):
        conf = brew_init_conf()
        brew_setpar(conf, 2, BREW_KNOWN)
        result = mgr.get(conf, "poly", 0, k)
        assert result.ok
        cases.append((k, result.entry))
    stub = build_multi_guard_stub(m, "poly", 2, cases)
    for x in (0, 5, -2):
        for k in (3, 4, 7, 11):  # 11 falls through to the original
            assert m.call(stub, x, k).int_return == x * k + k, (x, k)


def test_invalidate_memory_return_value_direct(setup):
    """Direct coverage of the ``invalidate_memory`` contract: the return
    value is exactly the number of dropped variants, per call."""
    m, mgr = setup
    cfg_a = m.image.malloc(16)
    cfg_b = m.image.malloc(16)
    m.memory.write_u64(cfg_a, 3)
    m.memory.write_u64(cfg_b, 4)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    assert mgr.get(conf, "apply_cfg", 0, cfg_a).ok
    conf_b = brew_init_conf()
    brew_setpar(conf_b, 2, BREW_PTR_TO_KNOWN)
    assert mgr.get(conf_b, "apply_cfg", 0, cfg_b).ok
    assert len(mgr) == 2
    # empty range: nothing dropped, epoch still bumps
    epoch = mgr.epoch
    assert mgr.invalidate_memory(0, 0) == 0
    assert mgr.epoch == epoch + 1
    # one descriptor's cell: exactly one variant dropped
    assert mgr.invalidate_memory(cfg_a, cfg_a + 8) == 1
    # everything: the remaining one
    assert mgr.invalidate_memory(0, 2**48) == 1
    assert mgr.invalidate_memory(0, 2**48) == 0
    assert len(mgr) == 0


def test_stats_keys_complete(setup):
    """``stats()`` exposes the full health vocabulary, including the
    cache-size and eviction counters."""
    m, mgr = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    mgr.get(conf, "poly", 0, 3)
    stats = mgr.stats()
    for key in ("hits", "misses", "fallbacks", "quarantine_hits",
                "quarantine_retries", "quarantined", "cached",
                "evictions", "code_dedup", "epoch"):
        assert key in stats, key
    assert stats["cached"] == 1 and stats["evictions"] == 0
    assert mgr.invalidate_function("poly") == 1
    assert mgr.stats()["evictions"] == 1
    assert mgr.stats()["cached"] == 0
