"""Debug-information tests (paper Sec. VIII: debugging rewritten code)."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_KNOWN
from repro.machine.vm import Machine

SOURCE = """
noinline long helper(long x) { return x * 3; }
noinline long f(long a, long b) {
    long t = helper(a) + b;
    return t - 1;
}
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def test_every_emitted_instruction_has_a_map_entry(machine):
    result = brew_rewrite(machine, brew_init_conf(), "f", 0, 0)
    assert result.ok and result.debug is not None
    from repro.isa.encoding import iter_decode

    code = machine.image.peek(result.entry, result.code_size)
    for insn in iter_decode(code, result.entry):
        assert insn.addr in result.debug.entries


def test_traced_instructions_point_into_original_functions(machine):
    result = brew_rewrite(machine, brew_init_conf(), "f", 0, 0)
    assert result.ok
    f_addr = machine.symbol("f")
    f_size = machine.image.function_sizes[f_addr]
    h_addr = machine.symbol("helper")
    h_size = machine.image.function_sizes[h_addr]
    origins = [o for o, _ in result.debug.entries.values() if o is not None]
    assert origins, "no traced provenance at all"
    for origin in origins:
        assert (f_addr <= origin < f_addr + f_size) or (
            h_addr <= origin < h_addr + h_size
        ), hex(origin)
    # the inlined helper contributes provenance of its own
    assert any(h_addr <= o < h_addr + h_size for o in origins)


def test_synthetic_code_is_labelled(machine):
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 5, 0)
    assert result.ok
    roles = {result.debug.role_of(addr) for addr in result.debug.entries}
    assert "traced" in roles
    # materializations of known values are marked, not blamed on source
    synth = [a for a in result.debug.entries
             if result.debug.entries[a][0] is None]
    for addr in synth:
        assert result.debug.role_of(addr) != "traced"


def test_explain_rewrite_listing(machine):
    result = brew_rewrite(machine, brew_init_conf(), "f", 0, 0)
    listing = machine.explain_rewrite(result)
    assert "; <- f" in listing or "; <- f+0x" in listing
    assert "helper" in listing  # inlined code attributed to its source


def test_explain_rewrite_rejects_failures(machine):
    conf = brew_init_conf()
    conf.max_output_instructions = 1
    result = brew_rewrite(machine, conf, "f", 0, 0)
    assert not result.ok
    with pytest.raises(ValueError):
        machine.explain_rewrite(result)
