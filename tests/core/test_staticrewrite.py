"""The ahead-of-time whole-image rewriting mode (Zipr-style static).

The acceptance claim: static mode produces **bit-for-bit identical
architectural results** to both the interpreted original and the
runtime rewriting mode on the entire well-behaved corpus — the
Section V stencil, the Section VI PGAS reduction, and the EXT-1 RDMA
prefetcher's machine — while paying its whole rewrite cost before the
first call and falling back gracefully (tagged, per function) on
anything the pipeline refuses.
"""

from __future__ import annotations

import hashlib
import struct

from repro.asm.assembler import assemble
from repro.core import StaticImageRewriter
from repro.machine.vm import Machine
from repro.models.pgas import PgasLab
from repro.models.rdma import RdmaPrefetcher
from repro.models.stencil import StencilLab
from repro.obs import Metrics


def _stencil_outcome(lab, run):
    return (
        run.uint_return,
        struct.pack("<d", run.float_return).hex(),
        hashlib.sha1(bytes(lab.machine.image.seg_heap.data)).hexdigest(),
    )


# ===================================================== corpus equivalence
def test_static_matches_runtime_and_interpreter_on_stencil():
    oracle_lab = StencilLab(xs=12, ys=12)
    oracle = _stencil_outcome(oracle_lab, oracle_lab.run_generic(iters=2))

    rt_lab = StencilLab(xs=12, ys=12)
    rt = rt_lab.rewrite_apply()
    assert rt.ok, rt.message
    runtime = _stencil_outcome(
        rt_lab, rt_lab.run_with_apply(rt.entry_or_original, iters=2))

    st_lab = StencilLab(xs=12, ys=12)
    static = StaticImageRewriter(st_lab.machine)
    report = static.rewrite_image()
    assert report.functions >= 5
    assert report.rewritten + report.fallback_count == report.functions
    got = _stencil_outcome(
        st_lab, st_lab.run_with_apply(static.entry("apply"), iters=2))

    assert got == oracle == runtime


def test_static_matches_runtime_on_pgas():
    lo, hi = 0, 128
    oracle_lab = PgasLab(nelems=128, nnodes=4)
    want = oracle_lab.sum_generic(lo, hi).float_return

    rt_lab = PgasLab(nelems=128, nnodes=4)
    rt = rt_lab.rewrite_kernel()
    rt_sum = rt_lab.sum_with_kernel(rt.entry_or_original, lo, hi)

    st_lab = PgasLab(nelems=128, nnodes=4)
    static = StaticImageRewriter(st_lab.machine)
    static.rewrite_image()
    st_sum = st_lab.machine.cpu.run(
        static.entry("ga_sum_range"), st_lab.ga_addr, lo, hi,
        st_lab.machine.symbol("ga_get"))

    assert st_sum.float_return == want == rt_sum.float_return


def test_static_coexists_with_rdma_prefetcher():
    """Static mode on the RDMA model's machine: the ahead-of-time pass
    must not perturb the prefetcher's own detect/preload/redirect
    machinery, and both answers must equal the naive reduction."""
    lab = PgasLab(nelems=128, nnodes=4)
    lo, hi = lab.block, 3 * lab.block
    want = lab.reference_sum(lo, hi)

    static = StaticImageRewriter(lab.machine)
    static.rewrite_image()
    via_static = lab.machine.cpu.run(
        static.entry("ga_sum_range"), lab.ga_addr, lo, hi,
        lab.machine.symbol("ga_get"))
    assert via_static.float_return == want

    pre = RdmaPrefetcher(lab)
    run, _cost = pre.run_prefetched(lo, hi)
    assert run.float_return == want


# ========================================================= mode mechanics
def test_static_pass_is_idempotent():
    lab = StencilLab(xs=12, ys=12)
    static = StaticImageRewriter(lab.machine)
    first = static.rewrite_image()
    table = dict(static.dispatch)
    second = static.rewrite_image()
    assert static.dispatch == table
    assert (second.functions, second.rewritten) == (
        first.functions, first.rewritten)


def test_entry_is_total_over_unrewritten_functions():
    """Functions added after the pass (or unknown addresses) dispatch to
    themselves — callers need no fallback logic."""
    lab = StencilLab(xs=12, ys=12)
    static = StaticImageRewriter(lab.machine)
    static.rewrite_image()
    late = lab.machine.image.add_function(
        "late_arrival", assemble("mov rax, 7\nret", 0)[0])
    assert static.entry("late_arrival") == late
    assert static.entry(late) == late


def test_hostile_function_falls_back_tagged():
    """A function the tracer refuses (unknown indirect jump) is tagged
    in the report and dispatches to its original body."""
    m = Machine()
    target = m.image.add_function(
        "landing", assemble("mov rax, 99\nret", 0)[0])
    hostile = m.image.add_function("hostile", assemble("jmpi rdi", 0)[0])
    metrics = Metrics()
    static = StaticImageRewriter(m, metrics=metrics)
    report = static.rewrite_image()
    assert report.fallbacks.get("hostile") == "indirect-jump"
    assert static.entry("hostile") == hostile
    # the original still runs fine through the dispatch table
    assert m.cpu.run(static.entry("hostile"), target).uint_return == 99
    assert '"static.fallback.indirect-jump":1' in metrics.snapshot_json()


def test_static_variants_register_in_metrics():
    metrics = Metrics()
    lab = StencilLab(xs=12, ys=12)
    static = StaticImageRewriter(lab.machine, metrics=metrics)
    report = static.rewrite_image()
    snapshot = metrics.snapshot_json()
    assert f'"static.functions":{report.functions}' in snapshot
    assert f'"static.rewritten":{report.rewritten}' in snapshot
