"""Online shadow-validation sampling: deterministic seeded selection,
the snapshot/compare/rollback protocol, and the `shadow` fault class."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_KNOWN
from repro.core.shadowexec import ShadowSampler
from repro.machine.vm import Machine
from repro.testing import FaultInjector

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
noinline long poly_evil(long x, long k) { return x * k + k + 1; }
noinline long store(long p, long v) { *(long*)p = v; return v; }
noinline long store_evil(long p, long v) { *(long*)p = v + 1; return v; }
noinline long deref(long p) { return *(long*)p; }
noinline long seven(long p) { return 7; }
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def _specialized_poly(machine, k=3):
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "poly", 0, k)
    assert result.ok
    return result.entry


# ------------------------------------------------------------- sampling
def test_decide_is_seeded_and_periodic(machine):
    a = ShadowSampler(machine, interval=8, seed=42)
    b = ShadowSampler(machine, interval=8, seed=42)
    keys = [("poly", 3), ("poly", 5), ("mix", 7)]
    decisions_a = [(k, a.decide(k)) for _ in range(40) for k in keys]
    decisions_b = [(k, b.decide(k)) for _ in range(40) for k in keys]
    assert decisions_a == decisions_b, "same seed must sample the same calls"
    for key in keys:
        picks = [i for i, (k, d) in enumerate(decisions_a) if k == key and d]
        # exactly one call per interval-length window of the key
        assert len(picks) == 40 // 8
        assert all(
            later - earlier == 8 * len(keys)
            for earlier, later in zip(picks, picks[1:])
        )


def test_phase_is_stable_across_processes_not_hash_salted(machine):
    # the phase comes from a sha1 digest of (seed, key), so it is a
    # fixed number — pin one value to catch accidental use of hash()
    sampler = ShadowSampler(machine, interval=8, seed=0)
    assert sampler._phase(("poly", 3)) == sampler._phase(("poly", 3))
    assert ShadowSampler(machine, interval=8, seed=0)._phase(("poly", 3)) == \
        sampler._phase(("poly", 3))


def test_interval_one_samples_every_call(machine):
    sampler = ShadowSampler(machine, interval=1)
    assert all(sampler.decide(("k",)) for _ in range(5))
    with pytest.raises(ValueError):
        ShadowSampler(machine, interval=0)


# ------------------------------------------------------------- protocol
def test_match_keeps_variant_effects(machine):
    sampler = ShadowSampler(machine)
    entry = _specialized_poly(machine)
    outcome = sampler.run_shadowed(entry, machine.image.resolve("poly"), (5, 3))
    assert outcome.divergence is None and not outcome.unjudged
    assert outcome.run.int_return == 18
    assert sampler.stats() == {
        "samples": 1, "matches": 1, "divergences": 0, "unjudged": 0
    }


def test_int_return_divergence_serves_the_original(machine):
    sampler = ShadowSampler(machine)
    outcome = sampler.run_shadowed(
        machine.image.resolve("poly_evil"), machine.image.resolve("poly"), (5, 3)
    )
    assert outcome.divergence is not None
    assert "int return diverged" in outcome.divergence
    # the caller sees the original's answer, not the variant's lie
    assert outcome.run.int_return == 18
    assert sampler.stats()["divergences"] == 1


def test_memory_divergence_is_rolled_back(machine):
    sampler = ShadowSampler(machine)
    cell = machine.image.malloc(8)
    outcome = sampler.run_shadowed(
        machine.image.resolve("store_evil"), machine.image.resolve("store"),
        (cell, 5),
    )
    assert outcome.divergence is not None
    assert "memory writes diverged" in outcome.divergence
    # the evil write (6) was rolled back; the original's write (5) stands
    assert machine.memory.read_u64(cell) == 5


def test_faulting_original_is_unjudged(machine):
    sampler = ShadowSampler(machine)
    outcome = sampler.run_shadowed(
        machine.image.resolve("seven"), machine.image.resolve("deref"), (0,)
    )
    assert outcome.unjudged and outcome.divergence is None
    assert outcome.run.int_return == 7
    assert sampler.stats()["unjudged"] == 1


def test_faulting_variant_is_a_divergence(machine):
    sampler = ShadowSampler(machine)
    outcome = sampler.run_shadowed(
        machine.image.resolve("deref"), machine.image.resolve("seven"), (0,)
    )
    assert outcome.divergence is not None
    assert "variant faulted" in outcome.divergence
    assert outcome.run.int_return == 7


# ----------------------------------------------------------- fault kind
def test_shadow_fault_class_forces_a_divergence(machine):
    """The `shadow` fault class models a silent miscompile: a correct
    variant is *observed* returning a flipped value, and the organic
    divergence machinery must fire."""
    sampler = ShadowSampler(machine)
    entry = _specialized_poly(machine)
    original = machine.image.resolve("poly")
    with FaultInjector("shadow") as fault:
        outcome = sampler.run_shadowed(entry, original, (5, 3))
    assert fault.fired
    assert outcome.divergence is not None
    assert outcome.run.int_return == 18, "caller still gets the truth"
    # without the injector the same variant matches again
    assert sampler.run_shadowed(entry, original, (5, 3)).divergence is None
