"""Graceful-failure coverage: every documented failure reason is reachable
and never crashes (paper Sec. III.G: "this robustness is needed as we may
follow arbitrary code paths")."""

from __future__ import annotations

import pytest

from repro.asm.assembler import assemble
from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.machine.vm import Machine


def load_asm(machine: Machine, name: str, src: str) -> int:
    probe, _ = assemble(src, 0, extra_labels=dict(machine.image.symbols))
    addr = machine.image.add_function(name, b"\x00" * len(probe))
    code, _ = assemble(src, addr, extra_labels=dict(machine.image.symbols))
    machine.image.poke(addr, code)
    return addr


@pytest.fixture()
def machine() -> Machine:
    return Machine()


def check_failure(machine, result, reason):
    assert not result.ok
    assert result.reason == reason, (result.reason, result.message)
    assert result.entry is None
    assert result.entry_or_original == result.original


def test_indirect_jump_unknown_target(machine):
    load_asm(machine, "f", "jmpi rdi")
    check_failure(machine, brew_rewrite(machine, brew_init_conf(), "f", 0),
                  "indirect-jump")


def test_decode_error_in_garbage(machine):
    addr = machine.image.add_function("garbage", b"\xff\xff\xff\xff")
    check_failure(machine, brew_rewrite(machine, brew_init_conf(), "garbage"),
                  "decode-error")


def test_trace_runs_into_nonexecutable_memory(machine):
    # a function that falls off its end into... nothing decodable; place
    # a jmp to a data address
    data = machine.image.add_data("blob", b"\x00" * 16)
    load_asm(machine, "f", f"mov rax, 1\njmp blob")
    result = brew_rewrite(machine, brew_init_conf(), "f")
    assert not result.ok
    assert result.reason in ("not-executable", "decode-error")


def test_buffer_full(machine):
    machine.load("""
    noinline long f(long n) {
        long t = 0;
        for (long i = 0; i < n; i++) t += i;
        return t;
    }
    """)
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    conf.max_output_instructions = 4
    check_failure(machine, brew_rewrite(machine, conf, "f", 1000), "buffer-full")


def test_trace_limit(machine):
    machine.load("""
    noinline long f(long n) {
        long t = 0;
        for (long i = 0; i < n; i++) t += i;
        return t;
    }
    """)
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    conf.max_trace_steps = 50
    check_failure(machine, brew_rewrite(machine, conf, "f", 100000), "trace-limit")


def test_rsp_escape(machine):
    load_asm(machine, "f", "mov rsp, rdi\nret")
    result = brew_rewrite(machine, brew_init_conf(), "f", 0)
    check_failure(machine, result, "rsp-escape")


def test_stack_imbalance(machine):
    load_asm(machine, "f", "push rax\nret")
    result = brew_rewrite(machine, brew_init_conf(), "f")
    check_failure(machine, result, "stack-imbalance")


def test_bad_argument_types(machine):
    machine.load("noinline long f(long a) { return a; }")
    result = brew_rewrite(machine, brew_init_conf(), "f", "not-an-int")
    check_failure(machine, result, "bad-argument")


def test_ptr_to_known_unmapped(machine):
    machine.load("noinline long f(long *p) { return *p; }")
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_PTR_TO_KNOWN)
    result = brew_rewrite(machine, conf, "f", 0xDEAD_BEEF_0000)
    check_failure(machine, result, "bad-argument")


def test_known_division_by_zero(machine):
    machine.load("noinline long f(long a, long b) { return a / b; }")
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 5, 0)
    check_failure(machine, result, "div-by-zero")


def test_failure_leaves_machine_usable(machine):
    """After any failure the machine and original function still work."""
    machine.load("noinline long f(long a) { return a * 2; }")
    conf = brew_init_conf()
    conf.max_output_instructions = 1
    result = brew_rewrite(machine, conf, "f", 3)
    assert not result.ok
    assert machine.call("f", 21).int_return == 42
    # and a subsequent rewrite with a sane budget succeeds
    good = brew_rewrite(machine, brew_init_conf(), "f", 3)
    assert good.ok
    assert machine.call(good.entry, 21).int_return == 42


def test_unknown_indirect_call_is_kept_not_failed(machine):
    """Extension beyond the paper: unknown indirect *calls* are kept with
    full compensation rather than failing (only unknown indirect jumps
    fail)."""
    machine.load("""
    noinline long target(long x) { return x + 5; }
    noinline long f(long (*fp)(long), long x) { return fp(x) + 1; }
    """)
    result = brew_rewrite(machine, brew_init_conf(), "f", 0, 0)
    assert result.ok, result.message
    t = machine.symbol("target")
    assert machine.call(result.entry, t, 10).int_return == 16
