"""Basic rewriter behaviour: specialization, folding, inlining, fallback.

The universal acceptance criterion: for every argument tuple consistent
with the declared known values, the rewritten function returns exactly
what the original returns (the drop-in-replacement contract of
Sec. III.E).
"""

from __future__ import annotations

import pytest

from repro.core import (
    BREW_KNOWN, BREW_PTR_TO_KNOWN,
    brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar, brew_setmem,
)
from repro.isa.encoding import iter_decode
from repro.isa.opcodes import Op, OpClass, op_info
from repro.machine.vm import Machine


def rewritten_ops(machine: Machine, result) -> list[Op]:
    code = machine.image.peek(result.entry, result.code_size)
    return [i.op for i in iter_decode(code, result.entry)]


@pytest.fixture
def machine() -> Machine:
    return Machine()


def test_fully_known_function_folds_to_constant(machine):
    machine.load("noinline long f(long a, long b) { return a * b + 7; }")
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 6, 7)
    assert result.ok, result.message
    assert machine.call(result.entry).int_return == 49
    ops = rewritten_ops(machine, result)
    # nothing but materializing rax and returning
    assert ops == [Op.MOV, Op.RET]


def test_partial_specialization_keeps_unknown_param(machine):
    machine.load("noinline long f(long a, long b) { return a * 10 + b; }")
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 4, 0)
    assert result.ok, result.message
    for b in (0, 1, -5, 123456):
        expected = machine.call("f", 4, b).int_return
        assert machine.call(result.entry, 4, b).int_return == expected
    # the known parameter must not be read from its register
    assert machine.call(result.entry, 999999, 2).int_return == 42


def test_unknown_params_mean_equivalent_generic_code(machine):
    machine.load("noinline long f(long a, long b) { return a - b; }")
    conf = brew_init_conf()
    result = brew_rewrite(machine, conf, "f", 0, 0)
    assert result.ok, result.message
    for a, b in [(5, 3), (0, 0), (-4, 10), (2**40, 1)]:
        assert (
            machine.call(result.entry, a, b).int_return
            == machine.call("f", a, b).int_return
        )


def test_float_specialization(machine):
    machine.load("noinline double f(double x, double y) { return x * y + 1.0; }")
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 0.0, 2.5)
    assert result.ok, result.message
    for x in (0.0, 1.0, -3.5, 42.0):
        assert (
            machine.call(result.entry, x, 2.5).float_return
            == machine.call("f", x, 2.5).float_return
        )


def test_known_trip_count_loop_fully_unrolls(machine):
    machine.load(
        """
        noinline long sumsq(long n) {
            long total = 0;
            for (long i = 1; i <= n; i++) total += i * i;
            return total;
        }
        """
    )
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "sumsq", 5)
    assert result.ok, result.message
    assert machine.call(result.entry).int_return == 1 + 4 + 9 + 16 + 25
    ops = rewritten_ops(machine, result)
    assert not any(op_info(op).opclass in (OpClass.JCC, OpClass.JMP) for op in ops)
    assert ops == [Op.MOV, Op.RET]  # the whole loop folds to a constant


def test_loop_with_unknown_bound_stays_a_loop(machine):
    machine.load(
        """
        noinline long tri(long n) {
            long total = 0;
            for (long i = 0; i < n; i++) total += i;
            return total;
        }
        """
    )
    conf = brew_init_conf()
    brew_setfunc(conf, None, force_unknown_results=True)
    result = brew_rewrite(machine, conf, "tri", 4)
    assert result.ok, result.message
    for n in (0, 1, 4, 10, 100):
        assert machine.call(result.entry, n).int_return == n * (n - 1) // 2
    ops = rewritten_ops(machine, result)
    assert any(op_info(op).opclass is OpClass.JCC for op in ops)


def test_known_memory_folds_global_reads(machine):
    machine.load(
        """
        long table[4] = { 10, 20, 30, 40 };
        noinline long f(long i) { return table[1] + table[2] + i; }
        """
    )
    conf = brew_init_conf()
    table = machine.symbol("table")
    brew_setmem(conf, table, table + 32)
    result = brew_rewrite(machine, conf, "f", 0)
    assert result.ok, result.message
    assert machine.call(result.entry, 5).int_return == 55
    ops = rewritten_ops(machine, result)
    # both loads folded away: add imm only
    assert Op.ADD in ops
    loads = [
        i for i in iter_decode(machine.image.peek(result.entry, result.code_size), 0)
        if any(type(o).__name__ == "Mem" for o in i.operands)
    ]
    # the only memory traffic is the unknown-parameter spill slot
    assert all("rsp" in str(i) for i in loads), [str(i) for i in loads]


def test_rodata_folds_without_setmem(machine):
    machine.load("noinline double f(double x) { return x * 2.5; }")
    conf = brew_init_conf()
    result = brew_rewrite(machine, conf, "f", 0.0)
    assert result.ok, result.message
    assert machine.call(result.entry, 4.0).float_return == 10.0


def test_inlining_removes_call(machine):
    machine.load(
        """
        noinline long helper(long x) { return x * 3; }
        noinline long f(long a) { return helper(a) + 1; }
        """
    )
    conf = brew_init_conf()
    result = brew_rewrite(machine, conf, "f", 0)
    assert result.ok, result.message
    assert machine.call(result.entry, 5).int_return == 16
    ops = rewritten_ops(machine, result)
    assert Op.CALL not in ops and Op.CALLI not in ops
    assert result.stats.inlined_calls >= 1


def test_noinline_config_keeps_call(machine):
    machine.load(
        """
        noinline long helper(long x) { return x * 3; }
        noinline long f(long a) { return helper(a) + 1; }
        """
    )
    conf = brew_init_conf()
    brew_setfunc(conf, machine.symbol("helper"), inline=False)
    result = brew_rewrite(machine, conf, "f", 0)
    assert result.ok, result.message
    assert machine.call(result.entry, 5).int_return == 16
    ops = rewritten_ops(machine, result)
    assert Op.CALL in ops


def test_failure_is_graceful_not_fatal(machine):
    # jmpi through an unknown register target must fail the rewrite
    from repro.asm.assembler import assemble

    src = "jmpi rdi"
    code, _ = assemble(src, 0)
    addr = machine.image.add_function("weird", b"\x00" * len(code))
    code, _ = assemble(src, addr)
    machine.image.poke(addr, code)
    conf = brew_init_conf()
    result = brew_rewrite(machine, conf, "weird", 0)
    assert not result.ok
    assert result.reason == "indirect-jump"
    assert result.entry_or_original == addr


def test_function_pointer_drop_in_replacement(machine):
    machine.load(
        """
        noinline long f(long a, long b) { return a * b; }
        noinline long use(long (*fp)(long, long), long x) { return fp(x, 7) + 1; }
        """
    )
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 0, 7)
    assert result.ok, result.message
    # original call path and rewritten call path agree
    use_conf = brew_init_conf()
    brew_setfunc(use_conf, None, force_unknown_results=True)
    assert (
        machine.call("use", result.entry, 6).int_return
        == machine.call("use", machine.symbol("f"), 6).int_return
        == 43
    )


def test_ptr_to_known_folds_struct_reads(machine):
    machine.load(
        """
        struct Cfg { long scale; long offset; };
        struct Cfg gcfg = { 5, 100 };
        noinline long f(long x, struct Cfg *c) { return x * c->scale + c->offset; }
        """
    )
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    cfg_addr = machine.symbol("gcfg")
    result = brew_rewrite(machine, conf, "f", 0, cfg_addr)
    assert result.ok, result.message
    for x in (0, 1, 9):
        assert machine.call(result.entry, x, cfg_addr).int_return == x * 5 + 100


def test_if_with_known_condition_folds_branch(machine):
    machine.load(
        """
        noinline long f(long mode, long x) {
            if (mode == 1) return x + 1000;
            return x - 1000;
        }
        """
    )
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 1, 0)
    assert result.ok, result.message
    assert machine.call(result.entry, 1, 5).int_return == 1005
    ops = rewritten_ops(machine, result)
    assert not any(op_info(op).opclass is OpClass.JCC for op in ops)


def test_if_with_unknown_condition_keeps_both_paths(machine):
    machine.load(
        """
        noinline long f(long mode, long x) {
            if (mode == 1) return x + 1000;
            return x - 1000;
        }
        """
    )
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "f", 0, 5)
    assert result.ok, result.message
    assert machine.call(result.entry, 1, 5).int_return == 1005
    assert machine.call(result.entry, 0, 5).int_return == -995
    ops = rewritten_ops(machine, result)
    assert any(op_info(op).opclass is OpClass.JCC for op in ops)


def test_rewrite_result_of_rewrite_is_composable(machine):
    # "the result of a rewriting step itself can be used as input for
    # further rewriting" (Sec. III.A)
    machine.load("noinline long f(long a, long b) { return a * b + a; }")
    conf1 = brew_init_conf()
    brew_setpar(conf1, 1, BREW_KNOWN)
    r1 = brew_rewrite(machine, conf1, "f", 3, 0)
    assert r1.ok, r1.message
    conf2 = brew_init_conf()
    brew_setpar(conf2, 2, BREW_KNOWN)
    r2 = brew_rewrite(machine, conf2, r1.entry, 0, 10)
    assert r2.ok, r2.message
    assert machine.call(r2.entry).int_return == 3 * 10 + 3
    assert rewritten_ops(machine, r2) == [Op.MOV, Op.RET]


def test_recursion_without_unroll_control_fails_gracefully(machine):
    machine.load(
        """
        noinline long fact(long n) {
            if (n < 2) return 1;
            return n * fact(n - 1);
        }
        """
    )
    conf = brew_init_conf()
    conf.max_output_instructions = 2000
    result = brew_rewrite(machine, conf, "fact", 0)
    # unknown n: the recursive call inlines forever until a budget stops it
    # OR the variant machinery converges; either outcome is acceptable,
    # but a crash is not.
    if result.ok:
        assert machine.call(result.entry, 5).int_return == 120
    else:
        assert result.reason in ("buffer-full", "trace-limit", "variant-limit")


def test_stats_are_populated(machine):
    machine.load("noinline long f(long a) { return a + 1; }")
    result = brew_rewrite(machine, brew_init_conf(), "f", 0)
    assert result.ok
    assert result.stats.traced_instructions > 0
    assert result.stats.emitted_instructions > 0
    assert result.rewrite_seconds >= 0.0
