"""World-signature trace cache: known-read recording, sharing across
irrelevant differences, read-filtered invalidation, content-addressed
code dedup, and the manager's eviction accounting."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.core.manager import SpecializationManager
from repro.core.rewriter import rewrite
from repro.machine.vm import Machine

SOURCE = """
struct Cfg { long scale; long bias; long unused; };
noinline long scaled(long x, struct Cfg *c) { return x * c->scale; }
noinline long affine(long x, struct Cfg *c) { return x * c->scale + c->bias; }
noinline long poly(long x, long k) { return x * k + k; }
"""


@pytest.fixture()
def setup():
    m = Machine()
    m.load(SOURCE)
    return m, SpecializationManager(m)


def _make_cfg(m, scale=2, bias=10, unused=77):
    cfg = m.image.malloc(24)
    m.memory.write_u64(cfg, scale)
    m.memory.write_u64(cfg + 8, bias)
    m.memory.write_u64(cfg + 16, unused)
    return cfg


# ------------------------------------------------------- tracer recording
def test_known_reads_recorded_on_result(setup):
    m, _ = setup
    cfg = _make_cfg(m)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    result = rewrite(m, conf, "affine", 0, cfg)
    assert result.ok, result.message
    reads = dict(result.known_reads)
    # scale and bias were consumed, the unused field was not
    assert reads[cfg] == 2 and reads[cfg + 8] == 10
    assert cfg + 16 not in reads


def test_known_reads_empty_without_known_memory(setup):
    m, _ = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = rewrite(m, conf, "poly", 0, 3)
    assert result.ok and result.known_reads == ()


# ------------------------------------------------- key sharing (arguments)
def test_unknown_args_share_one_variant(setup):
    """The concrete value of an UNKNOWN argument cannot reach the trace,
    so calls differing only there must share one cache slot."""
    m, mgr = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r1 = mgr.get(conf, "poly", 0, 3)
    r2 = mgr.get(conf, "poly", 999, 3)
    assert r1.ok and r1.entry == r2.entry
    assert mgr.hits == 1 and mgr.misses == 1 and len(mgr) == 1
    # ... while the *type* of an unknown argument still matters: float
    # vs int changes argument-register assignment
    r3 = mgr.get(conf, "poly", 0.5, 3)
    assert mgr.misses == 2 and r3.entry != r1.entry


def test_known_args_still_distinguish_variants(setup):
    m, mgr = setup
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    r3 = mgr.get(conf, "poly", 0, 3)
    r4 = mgr.get(conf, "poly", 0, 4)
    assert r3.entry != r4.entry
    assert m.call(r3.entry, 5, 3).int_return == 18
    assert m.call(r4.entry, 5, 4).int_return == 24


# --------------------------------------------- read-filtered invalidation
def test_unread_bytes_do_not_invalidate(setup):
    """Mutating a declared-known byte the trace never consumed keeps the
    variant fresh — the signature, not the declaration, is the dep."""
    m, mgr = setup
    cfg = _make_cfg(m)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    r1 = mgr.get(conf, "scaled", 0, cfg)
    assert r1.ok
    m.memory.write_u64(cfg + 8, 999)   # bias: declared known, never read
    m.memory.write_u64(cfg + 16, 888)  # unused: likewise
    r2 = mgr.get(conf, "scaled", 0, cfg)
    assert r2.entry == r1.entry and mgr.hits == 1
    # the read cell still invalidates
    m.memory.write_u64(cfg, 5)
    r3 = mgr.get(conf, "scaled", 0, cfg)
    assert r3.entry != r1.entry and mgr.misses == 2
    assert m.call(r3.entry, 6, cfg).int_return == 30


def test_invalidate_memory_is_read_filtered(setup):
    m, mgr = setup
    cfg = _make_cfg(m)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    assert mgr.get(conf, "scaled", 0, cfg).ok
    # a range covering only unread fields overlaps no dependency
    assert mgr.invalidate_memory(cfg + 8, cfg + 24) == 0
    assert len(mgr) == 1
    # the read field does
    assert mgr.invalidate_memory(cfg, cfg + 8) == 1
    assert len(mgr) == 0
    assert mgr.invalidate_memory(cfg, cfg + 8) == 0


# ------------------------------------------------- content-addressed dedup
def test_identical_bodies_dedup_across_keys(setup):
    """Two cache keys whose rewrites emit byte-identical code dispatch
    through one canonical entry."""
    m, mgr = setup
    cfg = _make_cfg(m)
    conf1 = brew_init_conf()
    brew_setpar(conf1, 2, BREW_PTR_TO_KNOWN)
    r1 = mgr.get(conf1, "scaled", 0, cfg)
    assert r1.ok
    # a second config differing only in an extra (never-read) declared
    # range: different fingerprint, hence a fresh rewrite — but the body
    # comes out byte-identical and is deduplicated
    scratch = m.image.malloc(8)
    conf2 = brew_init_conf()
    brew_setpar(conf2, 2, BREW_PTR_TO_KNOWN)
    conf2.add_known_memory(scratch, scratch + 8)
    r2 = mgr.get(conf2, "scaled", 0, cfg)
    assert r2.ok and mgr.misses == 2
    assert r2.entry == r1.entry
    assert mgr.code_dedup == 1 and mgr.stats()["code_dedup"] == 1
    assert m.call(r2.entry, 7, cfg).int_return == 14


# -------------------------------------------------- eviction accounting
def test_stats_report_evictions_and_cache_size(setup):
    m, mgr = setup
    cfg = _make_cfg(m)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    assert mgr.get(conf, "scaled", 0, cfg).ok
    stats = mgr.stats()
    assert stats["cached"] == 1 and stats["evictions"] == 0
    # staleness eviction (detected inside get) counts
    m.memory.write_u64(cfg, 3)
    assert mgr.get(conf, "scaled", 0, cfg).ok
    assert mgr.stats()["evictions"] == 1
    # explicit invalidation counts too
    assert mgr.invalidate_function("scaled") == 1
    stats = mgr.stats()
    assert stats["evictions"] == 2 and stats["cached"] == 0


def test_invalidation_listener_receives_dropped_keys(setup):
    m, mgr = setup
    cfg = _make_cfg(m)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    dropped: list = []
    mgr.add_invalidation_listener(dropped.extend)
    assert mgr.get(conf, "scaled", 0, cfg).ok
    key = mgr.key_for("scaled", conf, (0, cfg))
    assert mgr.invalidate_memory(cfg, cfg + 8) == 1
    assert dropped == [key]
    # no entries overlap any more: listener not re-fired
    mgr.invalidate_memory(cfg, cfg + 8)
    assert dropped == [key]
