"""Section V.C: the ``makeDynamic`` story.

Three facts to reproduce:

1. with the compiler at -O1 (no loop normalization), marking the loop
   start dynamic *works*: the loop is not unrolled;
2. with the compiler at -O2, loop normalization re-introduces a fresh
   induction variable counting from 0 — "there still was a constant
   known value which changed in each iteration, resulting in complete
   unrolling again";
3. the brute-force ``force_unknown_results`` configuration avoids
   unrolling regardless of what the compiler did.
"""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar, BREW_KNOWN
from repro.machine.vm import Machine

SOURCE = """
noinline long makeDynamic(long x) { return x; }

noinline long count(long n) {
    long total = 0;
    for (long i = makeDynamic(0); i < n; i++)
        total += i * 2;
    return total;
}
"""


def build(opt: int) -> Machine:
    m = Machine()
    m.load(SOURCE, opt=opt)
    return m


def rewrite_count(m: Machine, n: int, force_unknown: bool = False, threshold: int = 64):
    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_KNOWN)
    conf.dynamic_markers.add(m.symbol("makeDynamic"))
    conf.variant_threshold = threshold
    if force_unknown:
        brew_setfunc(conf, None, force_unknown_results=True)
    return conf, brew_rewrite(m, conf, "count", n)


def expected(n: int) -> int:
    return sum(i * 2 for i in range(n))


def test_o1_makedynamic_prevents_unrolling():
    m = build(opt=1)
    conf, result = rewrite_count(m, 10)
    assert result.ok, result.message
    # n was declared known, so the bound is baked in: the replacement
    # computes expected(10) regardless of the argument (drop-in contract
    # only holds for the declared-known values, Sec. III.E)
    assert m.call(result.entry, 10).int_return == expected(10)
    assert m.call(result.entry, 3).int_return == expected(10)
    # and the loop is still a loop: few blocks, compact code
    assert result.stats.blocks <= 12, result.stats


def test_o2_normalization_defeats_makedynamic():
    m = build(opt=2)
    conf, result = rewrite_count(m, 10)
    assert result.ok, result.message
    assert m.call(result.entry, 10).int_return == expected(10)
    # the fresh induction variable unrolled the loop: many more blocks
    # (one variant per iteration until the threshold migrates)
    assert result.stats.blocks > 50, result.stats


def test_force_unknown_results_avoids_unrolling_even_at_o2():
    m = build(opt=2)
    conf, result = rewrite_count(m, 10, force_unknown=True)
    assert result.ok, result.message
    assert m.call(result.entry, 10).int_return == expected(10)
    assert result.stats.blocks <= 16, result.stats


def test_unknown_arg_to_makedynamic_passes_through():
    m = build(opt=1)
    conf = brew_init_conf()
    conf.dynamic_markers.add(m.symbol("makeDynamic"))
    result = brew_rewrite(m, conf, "makeDynamic", 0)
    assert result.ok, result.message
    assert m.call(result.entry, 42).int_return == 42


def test_marker_emits_no_call():
    from repro.isa.encoding import iter_decode
    from repro.isa.opcodes import Op

    m = build(opt=1)
    conf, result = rewrite_count(m, 5)
    assert result.ok
    code = m.image.peek(result.entry, result.code_size)
    ops = [i.op for i in iter_decode(code, result.entry)]
    assert Op.CALL not in ops and Op.CALLI not in ops


def test_variant_threshold_bounds_o2_explosion():
    m = build(opt=2)
    conf, tight = rewrite_count(m, 1000, threshold=4)
    assert tight.ok, tight.message
    assert m.call(tight.entry, 1000).int_return == expected(1000)
    m2 = build(opt=2)
    conf, loose = rewrite_count(m2, 1000, threshold=32)
    assert loose.ok, loose.message
    assert tight.code_size < loose.code_size
