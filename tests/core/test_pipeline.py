"""Pass-pipeline tests: chain merging edge cases, worklist equivalence
with the old restart-from-scratch formulation, and the pass registry."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.blocks import BlockRegistry, CapturedBlock
from repro.core.config import RewriteConfig
from repro.core.known import World
from repro.core.passes.pipeline import (
    AVAILABLE_PASSES, _load_pass, merge_linear_chains,
)
from repro.errors import RewriteFailure
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import Imm, Reg
from repro.isa.registers import GPR


def _block(label, marker, final_target=None, extra_succs=()):
    """A captured block with one identifying instruction."""
    succs = list(extra_succs)
    if final_target is not None:
        succs.append(final_target)
    return CapturedBlock(
        label, 0x1000, World(),
        insns=[ins(Op.MOV, Reg(GPR.RAX), Imm(marker))],
        final_target=final_target, successors=succs,
    )


def _registry(*blocks) -> BlockRegistry:
    reg = BlockRegistry()
    for blk in blocks:
        reg.blocks[blk.label] = blk
    return reg


def _shape(reg: BlockRegistry) -> dict:
    return {
        label: (
            [i.operands[1].value for i in blk.insns],
            blk.final_target,
            sorted(blk.successors),
        )
        for label, blk in reg.blocks.items()
    }


# ----------------------------------------------------------- chain merging
def test_linear_chain_merges_into_one_block():
    reg = _registry(
        _block("@a", 1, final_target="@b"),
        _block("@b", 2, final_target="@c"),
        _block("@c", 3),
    )
    merge_linear_chains(reg, "@a")
    assert set(reg.blocks) == {"@a"}
    assert [i.operands[1].value for i in reg.blocks["@a"].insns] == [1, 2, 3]
    assert reg.blocks["@a"].final_target is None


def test_self_loop_fall_through_never_merges():
    """A block falling through to itself must not be absorbed (and the
    worklist must not spin on it)."""
    reg = _registry(_block("@a", 1, final_target="@a"))
    merge_linear_chains(reg, "@a")
    assert set(reg.blocks) == {"@a"}
    assert reg.blocks["@a"].final_target == "@a"
    # same with a non-entry self loop reached from the entry
    reg = _registry(
        _block("@e", 1, final_target="@a"),
        _block("@a", 2, final_target="@a"),
    )
    merge_linear_chains(reg, "@e")
    # @a's predecessors are @e and itself: 2 preds, no merge
    assert set(reg.blocks) == {"@e", "@a"}


def test_entry_label_target_never_merges():
    """The entry block is the variant's external entry point: a block
    falling through to it must keep the edge."""
    reg = _registry(
        _block("@entry", 1, final_target="@tail"),
        _block("@tail", 2, final_target="@entry"),
    )
    merge_linear_chains(reg, "@entry")
    assert set(reg.blocks) == {"@entry"}
    # @tail merged INTO the entry, but the back edge to @entry survived
    assert reg.blocks["@entry"].final_target == "@entry"
    assert [i.operands[1].value for i in reg.blocks["@entry"].insns] == [1, 2]


def test_diamond_join_never_merges():
    """A join point has two predecessors; absorbing it into either arm
    would duplicate or orphan the other's edge."""
    reg = _registry(
        _block("@e", 1, final_target="@l", extra_succs=["@r"]),
        _block("@l", 2, final_target="@j"),
        _block("@r", 3, final_target="@j"),
        _block("@j", 4),
    )
    merge_linear_chains(reg, "@e")
    assert "@j" in reg.blocks
    assert reg.blocks["@l" if "@l" in reg.blocks else "@e"].final_target == "@j"
    assert reg.blocks["@r"].final_target == "@j"


def _reference_merge(reg: BlockRegistry, entry_label: str) -> None:
    """The old restart-from-scratch formulation, kept as the oracle."""
    changed = True
    while changed:
        changed = False
        preds: Counter = Counter()
        for blk in reg.blocks.values():
            for succ in blk.successors:
                preds[succ] += 1
        for label, blk in list(reg.blocks.items()):
            tgt = blk.final_target
            if (
                tgt is not None
                and tgt != label
                and tgt != entry_label
                and preds.get(tgt, 0) == 1
                and tgt in reg.blocks
            ):
                nxt = reg.blocks.pop(tgt)
                blk.insns.extend(nxt.insns)
                blk.final_target = nxt.final_target
                blk.successors = [s for s in blk.successors if s != tgt]
                blk.successors.extend(nxt.successors)
                changed = True
                break


@pytest.mark.parametrize("seed", range(40))
def test_worklist_matches_restart_oracle_on_random_cfgs(seed):
    """The worklist merge must produce exactly the shape the old
    quadratic restart loop produced, on arbitrary small CFGs."""
    rng = random.Random(seed)
    labels = [f"@b{i}" for i in range(rng.randint(2, 10))]
    spec = []
    for i, label in enumerate(labels):
        tgt = rng.choice(labels + [None])
        extra = [rng.choice(labels)] if rng.random() < 0.4 else []
        spec.append((label, i, tgt, extra))

    def build():
        return _registry(*[
            _block(label, marker, final_target=tgt, extra_succs=extra)
            for label, marker, tgt, extra in spec
        ])

    a, b = build(), build()
    merge_linear_chains(a, labels[0])
    _reference_merge(b, labels[0])
    assert _shape(a) == _shape(b)


# ------------------------------------------------------------ pass registry
def test_every_available_pass_round_trips_through_load():
    for name in AVAILABLE_PASSES:
        fn = _load_pass(name)
        assert callable(fn), name


def test_unknown_pass_is_a_rewrite_failure():
    with pytest.raises(RewriteFailure) as exc:
        _load_pass("no-such-pass")
    assert exc.value.reason == "bad-pass"


def test_rewrite_config_accepts_every_registered_pass():
    conf = RewriteConfig(passes=tuple(AVAILABLE_PASSES))
    for name in conf.passes:
        assert callable(_load_pass(name))
