"""Post-capture optimization pass tests.

Each pass is tested in isolation on hand-built instruction lists, then
the pipeline is tested end-to-end through ``brew_rewrite`` with the
universal acceptance criterion: passes never change results.
"""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar, BREW_KNOWN
from repro.core.passes.dce import dead_code_elimination
from repro.core.passes.redundant_load import remove_redundant_loads
from repro.core.passes.peephole import peephole_blocks
from repro.core.passes.reorder import reorder_loads
from repro.core.passes.vectorize import vectorize_blocks
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Mem, Reg
from repro.isa.registers import GPR, XMM
from repro.machine.image import Image
from repro.machine.vm import Machine


@pytest.fixture()
def image() -> Image:
    return Image()


R = lambda r: Reg(r)
F = lambda x: FReg(x)


# -------------------------------------------------------------------- DCE
def test_dce_removes_overwritten_value(image):
    insns = [
        ins(Op.MOV, R(GPR.RAX), Imm(1)),   # dead: overwritten below
        ins(Op.MOV, R(GPR.RAX), Imm(2)),
        ins(Op.RET),
    ]
    out = dead_code_elimination(insns, image)
    assert [str(i) for i in out] == ["mov rax, 2", "ret"]


def test_dce_keeps_value_read_before_overwrite(image):
    insns = [
        ins(Op.MOV, R(GPR.RAX), Imm(1)),
        ins(Op.ADD, R(GPR.RCX), R(GPR.RAX)),
        ins(Op.MOV, R(GPR.RAX), Imm(2)),
        ins(Op.RET),
    ]
    assert len(dead_code_elimination(insns, image)) == 4


def test_dce_keeps_flag_writers_before_jcc(image):
    insns = [
        ins(Op.CMP, R(GPR.RAX), Imm(0)),
        ins(Op.JE, Imm(0x1000)),
    ]
    assert len(dead_code_elimination(insns, image)) == 2


def test_dce_respects_block_end_liveness(image):
    # rax set and never overwritten: live at block end, must stay
    insns = [ins(Op.MOV, R(GPR.RAX), Imm(7))]
    assert len(dead_code_elimination(insns, image)) == 1


def test_dce_never_touches_stores(image):
    insns = [
        ins(Op.MOV, Mem(GPR.RSP, disp=-8), Imm(1)),
        ins(Op.MOV, Mem(GPR.RSP, disp=-8), Imm(2)),
    ]
    assert len(dead_code_elimination(insns, image)) == 2


# --------------------------------------------------------- redundant loads
def test_redundant_load_becomes_move(image):
    mem = Mem(GPR.RDI, disp=8)
    insns = [
        ins(Op.MOVSD, F(XMM.XMM8), mem),
        ins(Op.ADDSD, F(XMM.XMM9), F(XMM.XMM8)),
        ins(Op.MOVSD, F(XMM.XMM10), mem),
    ]
    out = remove_redundant_loads(insns, image)
    assert str(out[2]) == "movsd xmm10, xmm8"


def test_exact_redundant_load_is_dropped(image):
    mem = Mem(GPR.RDI, disp=8)
    insns = [
        ins(Op.MOV, R(GPR.RAX), mem),
        ins(Op.ADD, R(GPR.RCX), Imm(1)),
        ins(Op.MOV, R(GPR.RAX), mem),
    ]
    out = remove_redundant_loads(insns, image)
    assert len(out) == 2


def test_store_invalidates_availability(image):
    mem = Mem(GPR.RDI, disp=8)
    insns = [
        ins(Op.MOV, R(GPR.RAX), mem),
        ins(Op.MOV, Mem(GPR.RSI, disp=0), R(GPR.RCX)),  # may alias
        ins(Op.MOV, R(GPR.RDX), mem),
    ]
    out = remove_redundant_loads(insns, image)
    assert str(out[2]) == f"mov rdx, {mem}"


def test_overwriting_address_register_invalidates(image):
    mem = Mem(GPR.RDI, disp=8)
    insns = [
        ins(Op.MOV, R(GPR.RAX), mem),
        ins(Op.ADD, R(GPR.RDI), Imm(8)),
        ins(Op.MOV, R(GPR.RDX), mem),
    ]
    out = remove_redundant_loads(insns, image)
    assert len(out) == 3 and str(out[2]).startswith("mov rdx, [rdi")


def test_overwriting_holder_invalidates(image):
    mem = Mem(GPR.RDI, disp=8)
    insns = [
        ins(Op.MOV, R(GPR.RAX), mem),
        ins(Op.MOV, R(GPR.RAX), Imm(0)),
        ins(Op.MOV, R(GPR.RDX), mem),
    ]
    out = remove_redundant_loads(insns, image)
    assert str(out[2]) == f"mov rdx, {mem}"


# ----------------------------------------------------------------- peephole
def test_peephole_drops_self_moves(image):
    insns = [
        ins(Op.MOV, R(GPR.RAX), R(GPR.RAX)),
        ins(Op.MOVSD, F(XMM.XMM8), F(XMM.XMM8)),
        ins(Op.ADD, R(GPR.RAX), Imm(0)),
        ins(Op.RET),
    ]
    out = peephole_blocks(insns, image)
    assert [i.op for i in out] == [Op.RET]


def test_peephole_strength_reduces_imul(image):
    insns = [ins(Op.IMUL, R(GPR.RAX), Imm(8))]
    out = peephole_blocks(insns, image)
    assert str(out[0]) == "shl rax, 3"


# ------------------------------------------------------------------ reorder
def test_reorder_hoists_independent_load(image):
    insns = [
        ins(Op.MOVSD, F(XMM.XMM8), Mem(GPR.RDI, disp=0)),
        ins(Op.MULSD, F(XMM.XMM8), F(XMM.XMM9)),
        ins(Op.MOVSD, F(XMM.XMM10), Mem(GPR.RDI, disp=8)),
    ]
    out = reorder_loads(insns, image)
    # the second load is independent of the mulsd and bubbles above it
    assert out[1].op is Op.MOVSD and str(out[1].operands[0]) == "xmm10"


def test_reorder_respects_dependencies(image):
    insns = [
        ins(Op.MOVSD, F(XMM.XMM8), Mem(GPR.RDI, disp=0)),
        ins(Op.MOVSD, F(XMM.XMM9), F(XMM.XMM8)),
    ]
    out = reorder_loads(insns, image)
    assert [str(i.operands[0]) for i in out] == ["xmm8", "xmm9"]


def test_reorder_never_crosses_stores_with_loads(image):
    insns = [
        ins(Op.MOVSD, Mem(GPR.RSI, disp=0), F(XMM.XMM8)),
        ins(Op.MOVSD, F(XMM.XMM9), Mem(GPR.RDI, disp=0)),
    ]
    out = reorder_loads(insns, image)
    assert isinstance(out[0].operands[0], Mem)  # store stays first


# ---------------------------------------------------------------- vectorize
def _axpy_chain(image, lit_addr):
    return [
        # y[0] = a*x[0] + y[0]
        ins(Op.MOVSD, F(XMM.XMM8), Mem(GPR.RDI, disp=0)),
        ins(Op.MULSD, F(XMM.XMM8), Mem(disp=lit_addr)),
        ins(Op.ADDSD, F(XMM.XMM8), Mem(GPR.RSI, disp=0)),
        ins(Op.MOVSD, Mem(GPR.RSI, disp=0), F(XMM.XMM8)),
        # y[1] = a*x[1] + y[1]  (scratch registers reused, as the
        # rewriter's unrolled output does)
        ins(Op.MOVSD, F(XMM.XMM8), Mem(GPR.RDI, disp=8)),
        ins(Op.MULSD, F(XMM.XMM8), Mem(disp=lit_addr)),
        ins(Op.ADDSD, F(XMM.XMM8), Mem(GPR.RSI, disp=8)),
        ins(Op.MOVSD, Mem(GPR.RSI, disp=8), F(XMM.XMM8)),
    ]


def test_vectorize_pairs_adjacent_chains(image):
    lit = image.float_literal(2.5)
    # a RET terminator marks the fused registers dead (ABI), which the
    # pass requires before fusing
    out = vectorize_blocks(_axpy_chain(image, lit) + [ins(Op.RET)], image)
    ops = [i.op for i in out]
    assert ops == [Op.MOVUPD, Op.MULPD, Op.ADDPD, Op.MOVUPD, Op.RET]
    # broadcast literal is a 16-byte packed cell
    plit = out[1].operands[1]
    raw = image.peek(plit.disp, 16)
    import struct

    assert struct.unpack("<2d", raw) == (2.5, 2.5)


def test_vectorize_rejects_live_registers_after(image):
    # without a RET (or redefinition), the lanes may be observed: no fuse
    lit = image.float_literal(2.5)
    out = vectorize_blocks(_axpy_chain(image, lit), image)
    assert all(i.op is not Op.MOVUPD for i in out)


def test_vectorize_rejects_non_adjacent_memory(image):
    lit = image.float_literal(2.5)
    chain = _axpy_chain(image, lit)
    # break adjacency: second load at +16 instead of +8
    chain[4] = ins(Op.MOVSD, F(XMM.XMM8), Mem(GPR.RDI, disp=16))
    out = vectorize_blocks(chain + [ins(Op.RET)], image)
    assert all(i.op not in (Op.MOVUPD, Op.ADDPD) for i in out)


def test_vectorized_code_executes_correctly(image):
    from repro.machine.cpu import CPU
    from repro.isa.encoding import encode_program

    lit = image.float_literal(3.0)
    insns = _axpy_chain(image, lit) + [ins(Op.RET)]
    insns = vectorize_blocks(insns, image)
    code, _ = encode_program(insns, 0)
    addr = image.add_function("axpy2", b"\x00" * len(code))
    code, _ = encode_program(insns, addr)
    image.poke(addr, code)
    x = image.malloc(16)
    y = image.malloc(16)
    import struct

    image.poke(x, struct.pack("<2d", 1.0, 2.0))
    image.poke(y, struct.pack("<2d", 10.0, 20.0))
    cpu = CPU(image)
    cpu.run(addr, x, y)
    assert struct.unpack("<2d", image.peek(y, 16)) == (13.0, 26.0)


# ------------------------------------------------------------ end to end
SOURCE = """
noinline double work(double *x, double *y, long n, double a) {
    double last = 0.0;
    for (long i = 0; i < n; i++) {
        y[i] = a * x[i] + y[i];
        last = y[i];
    }
    return last;
}
"""


@pytest.mark.parametrize("passes", [
    (), ("dce",), ("redundant-load",), ("peephole",),
    ("dce", "redundant-load", "peephole"),
    ("reorder", "vectorize"),
    ("dce", "redundant-load", "peephole", "reorder", "vectorize"),
])
def test_passes_preserve_semantics(passes):
    import struct as st

    m = Machine()
    m.load(SOURCE)
    n = 6
    x = m.image.malloc(n * 8)
    y = m.image.malloc(n * 8)

    def fill():
        for i in range(n):
            m.memory.write_f64(x + 8 * i, float(i + 1))
            m.memory.write_f64(y + 8 * i, float(10 * i))

    conf = brew_init_conf()
    brew_setpar(conf, 3, BREW_KNOWN)  # n known -> full unroll
    brew_setpar(conf, 4, BREW_KNOWN)  # a known
    conf.passes = passes
    result = brew_rewrite(m, conf, "work", x, y, n, 2.0)
    assert result.ok, result.message
    fill()
    expected_y = [2.0 * (i + 1) + 10 * i for i in range(n)]
    out = m.call(result.entry, x, y, n, 2.0)
    got = [m.memory.read_f64(y + 8 * i) for i in range(n)]
    assert got == expected_y
    assert out.float_return == expected_y[-1]


def test_pass_pipeline_reduces_cycles():
    m = Machine()
    m.load(SOURCE)
    n = 8
    x = m.image.malloc(n * 8)
    y = m.image.malloc(n * 8)

    def measure(passes):
        conf = brew_init_conf()
        brew_setpar(conf, 3, BREW_KNOWN)
        brew_setpar(conf, 4, BREW_KNOWN)
        conf.passes = passes
        result = brew_rewrite(m, conf, "work", x, y, n, 2.0)
        assert result.ok, result.message
        return m.call(result.entry, x, y, n, 2.0).cycles

    plain = measure(())
    optimized = measure(("dce", "redundant-load", "peephole"))
    vectorized = measure(("dce", "redundant-load", "peephole", "reorder", "vectorize"))
    assert optimized <= plain
    assert vectorized <= optimized


def test_unknown_pass_name_fails_gracefully():
    m = Machine()
    m.load("noinline long f(long a) { return a; }")
    conf = brew_init_conf()
    conf.passes = ("no-such-pass",)
    result = brew_rewrite(m, conf, "f", 0)
    assert not result.ok and result.reason == "bad-pass"


def test_dce_mid_block_branch_makes_everything_live(image):
    """Regression: after chain merging a block contains forks; a value
    only read on the taken path must survive DCE."""
    insns = [
        ins(Op.MOV, R(GPR.RCX), Imm(7)),      # read only on the taken path
        ins(Op.CMP, R(GPR.RAX), Imm(0)),
        ins(Op.JE, Imm(0x5000)),              # taken path reads rcx
        ins(Op.MOV, R(GPR.RCX), Imm(9)),      # fall-through overwrites it
        ins(Op.RET),
    ]
    out = dead_code_elimination(insns, image)
    assert len(out) == 5  # nothing removed
