"""Profile-guided guarded specialization (EXP-8) and profiling hooks."""

from __future__ import annotations

import pytest

from repro.core.dispatch import build_guard_stub, specialize_hot_param
from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_KNOWN
from repro.machine.vm import Machine
from repro.profiling import CallCounter, ValueProfiler

SOURCE = """
noinline long poly(long x, long k) {
    long acc = 0;
    for (long i = 0; i < k; i++)
        acc += x + i;
    return acc;
}
noinline long caller(long x, long k) { return poly(x, k); }
"""


def expected(x: int, k: int) -> int:
    return sum(x + i for i in range(k))


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def test_value_profiler_observes_args(machine):
    profiler = ValueProfiler(machine.cpu, watch={machine.symbol("poly")})
    with profiler:
        for x in (3, 3, 3, 9):
            machine.call("caller", x, 4)
    profile = profiler.profile(machine.symbol("poly"))
    assert profile.calls == 4
    assert profile.values[1][3] == 3
    assert profile.hot_value(1, min_share=0.7) == 3
    assert profile.hot_value(1, min_share=0.9) is None
    assert profile.hot_value(2) == 4


def test_call_counter_finds_hotspots(machine):
    counter = CallCounter(machine.cpu)
    with counter:
        for _ in range(5):
            machine.call("caller", 1, 2)
    hot = dict(counter.hotspots())
    assert hot[machine.symbol("poly")] == 5


def test_guard_stub_routes_correctly(machine):
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    result = brew_rewrite(machine, conf, "poly", 0, 6)
    assert result.ok
    stub = build_guard_stub(machine, "poly", 2, 6, result.entry)
    # guarded value goes to the specialized variant
    assert machine.call(stub, 10, 6).int_return == expected(10, 6)
    # any other value falls back to the original
    assert machine.call(stub, 10, 3).int_return == expected(10, 3)
    assert machine.call(stub, -2, 9).int_return == expected(-2, 9)


def test_specialize_hot_param_end_to_end(machine):
    poly = machine.symbol("poly")
    profiler = ValueProfiler(machine.cpu, watch={poly})
    with profiler:
        for _ in range(9):
            machine.call("caller", 5, 7)
        machine.call("caller", 5, 2)
    spec = specialize_hot_param(machine, "poly", profiler.profile(poly), param=2)
    assert spec is not None
    assert spec.guard_value == 7
    # drop-in correctness for both hot and cold values
    for x, k in [(5, 7), (0, 7), (5, 2), (11, 1)]:
        assert machine.call(spec.entry, x, k).int_return == expected(x, k)
    # the hot path really is the specialized body (fewer cycles)
    hot = machine.call(spec.entry, 5, 7)
    cold_via_orig = machine.call("poly", 5, 7)
    assert hot.cycles < cold_via_orig.cycles


def test_specialize_hot_param_without_dominant_value(machine):
    poly = machine.symbol("poly")
    profiler = ValueProfiler(machine.cpu, watch={poly})
    with profiler:
        for k in range(1, 7):
            machine.call("caller", 1, k)
    spec = specialize_hot_param(machine, "poly", profiler.profile(poly), param=2)
    assert spec is None
