"""Handler-call injection (paper Sec. III.D callbacks, Sec. VIII remote-
access detection)."""

from __future__ import annotations

import math

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_PTR_TO_KNOWN
from repro.machine.vm import Machine

SOURCE = """
noinline double total(double *a, long n) {
    double t = 0.0;
    for (long i = 0; i < n; i++)
        t = t + a[i];
    return t;
}
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def test_entry_hook_fires_once_per_call(machine):
    entries = []
    hook = machine.register_host_function("entry_hook", lambda cpu: entries.append(cpu.pc))
    conf = brew_init_conf()
    conf.entry_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    buf = machine.image.malloc(4 * 8)
    for i in range(4):
        machine.memory.write_f64(buf + 8 * i, float(i))
    out = machine.call(result.entry, buf, 4)
    assert math.isclose(out.float_return, 6.0)
    assert len(entries) == 1
    machine.call(result.entry, buf, 4)
    assert len(entries) == 2


def test_memory_hook_observes_data_addresses(machine):
    seen = []
    hook = machine.register_host_function(
        "mem_hook", lambda cpu: seen.append(cpu.regs[7])  # rdi = address
    )
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    buf = machine.image.malloc(3 * 8)
    values = [1.5, -2.0, 4.25]
    for i, v in enumerate(values):
        machine.memory.write_f64(buf + 8 * i, v)
    out = machine.call(result.entry, buf, 3)
    assert math.isclose(out.float_return, sum(values))
    # every element load was observed with its exact address
    data_hits = [a for a in seen if buf <= a < buf + 24]
    assert sorted(data_hits) == [buf, buf + 8, buf + 16]


def test_memory_hook_can_count_remote_accesses(machine):
    """The Sec. VIII use case: detect remote accesses for prefetching."""
    remote_seg = machine.image.map_remote_node(0, 0x100, extra_cost=100)
    remote = []
    hook = machine.register_host_function(
        "remote_detect",
        lambda cpu: remote.append(cpu.regs[7])
        if remote_seg.base <= cpu.regs[7] < remote_seg.end else None,
    )
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    for i in range(4):
        machine.memory.write_f64(remote_seg.base + 8 * i, 2.0)
    out = machine.call(result.entry, remote_seg.base, 4)
    assert math.isclose(out.float_return, 8.0)
    assert len(remote) == 4
