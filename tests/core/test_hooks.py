"""Handler-call injection (paper Sec. III.D callbacks, Sec. VIII remote-
access detection)."""

from __future__ import annotations

import math

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_PTR_TO_KNOWN
from repro.machine.vm import Machine

SOURCE = """
noinline double total(double *a, long n) {
    double t = 0.0;
    for (long i = 0; i < n; i++)
        t = t + a[i];
    return t;
}
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def test_entry_hook_fires_once_per_call(machine):
    entries = []
    hook = machine.register_host_function("entry_hook", lambda cpu: entries.append(cpu.pc))
    conf = brew_init_conf()
    conf.entry_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    buf = machine.image.malloc(4 * 8)
    for i in range(4):
        machine.memory.write_f64(buf + 8 * i, float(i))
    out = machine.call(result.entry, buf, 4)
    assert math.isclose(out.float_return, 6.0)
    assert len(entries) == 1
    machine.call(result.entry, buf, 4)
    assert len(entries) == 2


def test_memory_hook_observes_data_addresses(machine):
    seen = []
    hook = machine.register_host_function(
        "mem_hook", lambda cpu: seen.append(cpu.regs[7])  # rdi = address
    )
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    buf = machine.image.malloc(3 * 8)
    values = [1.5, -2.0, 4.25]
    for i, v in enumerate(values):
        machine.memory.write_f64(buf + 8 * i, v)
    out = machine.call(result.entry, buf, 3)
    assert math.isclose(out.float_return, sum(values))
    # every element load was observed with its exact address
    data_hits = [a for a in seen if buf <= a < buf + 24]
    assert sorted(data_hits) == [buf, buf + 8, buf + 16]


def test_memory_hook_can_count_remote_accesses(machine):
    """The Sec. VIII use case: detect remote accesses for prefetching."""
    remote_seg = machine.image.map_remote_node(0, 0x100, extra_cost=100)
    remote = []
    hook = machine.register_host_function(
        "remote_detect",
        lambda cpu: remote.append(cpu.regs[7])
        if remote_seg.base <= cpu.regs[7] < remote_seg.end else None,
    )
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(machine, conf, "total", 0, 0)
    assert result.ok, result.message
    for i in range(4):
        machine.memory.write_f64(remote_seg.base + 8 * i, 2.0)
    out = machine.call(result.entry, remote_seg.base, 4)
    assert math.isclose(out.float_return, 8.0)
    assert len(remote) == 4


# ---- regression pin: memory-hook rdi save must be an absolute cell ----
#
# The tracer's hook injection once saved rdi to a stack-relative slot
# sized from the *running* min_stack estimate.  A hook firing early in
# the trace — before later code grew the frame — could then share its
# save slot with a spill slot allocated afterwards, and the hook's save
# would clobber the spilled local.  The fix stores rdi in an absolute
# heap scratch cell.  This source forces the collision shape: a dozen
# simultaneously-live temporaries (deep spill slots) around hooked loads.
SPILL_SOURCE = """
noinline long churn(long *a, long x) {
    long t1 = x + 1;
    long t2 = x ^ 3;
    long t3 = x * 5;
    long t4 = x - 7;
    long t5 = x * x;
    long t6 = t1 + t2;
    long t7 = t3 - t4;
    long t8 = t5 ^ t1;
    long t9 = t2 * 3;
    long t10 = t4 + t5;
    long t11 = t6 - t9;
    long t12 = t7 + t8;
    long v = a[0] + a[1];
    return v + t1 - t2 + t3 - t4 + t5 - t6 + t7 - t8 + t9 - t10 + t11 - t12;
}
"""


def test_memory_hook_save_survives_late_spill_slots():
    """Hooked rewrite of a spill-heavy function computes exactly what the
    original does (the old stack-slot save corrupted a live local)."""
    m = Machine()
    m.load(SPILL_SOURCE)
    seen = []
    hook = m.register_host_function("mem_hook", lambda cpu: seen.append(cpu.regs[7]))
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(m, conf, "churn", 0, 0)
    assert result.ok, result.message
    buf = m.image.malloc(2 * 8)
    for x in (0, 1, 13, -5, 1 << 20):
        for a0, a1 in ((3, 4), (-100, 100)):
            m.memory.write_u64(buf, a0 & (2**64 - 1))
            m.memory.write_u64(buf + 8, a1 & (2**64 - 1))
            want = m.call("churn", buf, x).int_return
            got = m.call(result.entry, buf, x).int_return
            assert got == want, f"x={x} a=({a0},{a1}): {got} != {want}"
    assert seen, "hook never fired"


def test_memory_hook_save_targets_absolute_cell():
    """Pin the mechanism, not just the behaviour: the mov right before
    each hook call sequence must write rdi to an absolute address, never
    an rsp-relative slot."""
    m = Machine()
    m.load(SPILL_SOURCE)
    hook = m.register_host_function("mem_hook", lambda cpu: None)
    conf = brew_init_conf()
    conf.memory_hook = hook
    result = brew_rewrite(m, conf, "churn", 0, 0)
    assert result.ok, result.message
    lines = m.disassemble_function(result.entry).splitlines()
    hook_calls = [i for i, line in enumerate(lines) if "call mem_hook" in line]
    assert hook_calls, "no instrumented loads in a load-heavy function"
    for i in hook_calls:
        # sequence: mov <scratch>, rdi ... lea rdi, <addr> ; call ; mov
        # rdi, <scratch> — the restore directly after the call names the
        # scratch location unambiguously
        restore = lines[i + 1]
        assert "mov rdi," in restore and "rsp" not in restore, (
            f"stack-relative hook scratch: {restore}"
        )
        # and the matching save into that same absolute cell exists
        cell = restore.split("mov rdi, ")[1]
        assert any(f"mov {cell}, rdi" in line for line in lines[:i]), (
            f"no absolute save for {cell}"
        )
