"""Known-world state unit + property tests (lattice laws the tracer's
correctness rests on)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.known import (
    KnownFloat, KnownInt, RegSnapshot, StackRel, World,
    abs_key, generalize, materialization_needs, migration_mismatch, stack_key,
)
from repro.isa.flags import Flag
from repro.isa.registers import GPR, XMM


def make_world(**regs) -> World:
    w = World.entry_world()
    for name, value in regs.items():
        w.regs[GPR[name.upper()]] = value
    return w


def test_entry_world_only_rsp_known():
    w = World.entry_world()
    assert w.regs[GPR.RSP] == StackRel(0)
    assert all(w.regs[r] is None for r in GPR if r is not GPR.RSP)
    assert all(v is None for v in w.xmm.values())


def test_digest_equality_and_hash():
    a = make_world(rax=KnownInt(5))
    b = make_world(rax=KnownInt(5))
    assert a == b and hash(a) == hash(b)
    b.regs[GPR.RAX] = KnownInt(6)
    assert a != b


def test_digest_ignores_flags():
    a = make_world()
    b = make_world()
    a.flags[Flag.ZF] = True
    assert a == b


def test_copy_is_deep_enough():
    a = make_world(rax=KnownInt(1))
    a.mem[stack_key(-8)] = KnownInt(2)
    b = a.copy()
    b.regs[GPR.RAX] = None
    b.mem[stack_key(-8)] = None
    assert a.regs[GPR.RAX] == KnownInt(1)
    assert a.mem[stack_key(-8)] == KnownInt(2)


def test_migration_subset_rule():
    rich = make_world(rax=KnownInt(1), rcx=KnownInt(2))
    poor = make_world(rax=KnownInt(1))
    assert migration_mismatch(rich, poor) == []        # rich -> poor ok
    assert migration_mismatch(poor, rich) != []        # poor lacks rcx


def test_migration_value_conflict():
    a = make_world(rax=KnownInt(1))
    b = make_world(rax=KnownInt(2))
    assert migration_mismatch(a, b) != []


def test_migration_memory_rules():
    src = make_world()
    dst = make_world()
    src.mem[abs_key(0x1000)] = KnownInt(5)
    dst.mem[abs_key(0x1000)] = None  # dirty: runtime-live expected
    assert migration_mismatch(src, dst) == []
    _, _, mem_keys = materialization_needs(src, dst)
    assert abs_key(0x1000) in mem_keys


def test_snapshot_alias_blocks_materializing_migration():
    # dst folds a cell to rsi; src would materialize rsi on the edge,
    # which clobbers the aliased content -> must be incompatible
    src = make_world(rsi=KnownInt(7))
    dst = make_world()
    snap = RegSnapshot(GPR.RSI, 0)
    src.mem[stack_key(-16)] = snap
    dst.mem[stack_key(-16)] = snap
    assert migration_mismatch(src, dst) != []


def test_generalize_keeps_agreement_drops_conflict():
    a = make_world(rax=KnownInt(1), rcx=KnownInt(2))
    b = make_world(rax=KnownInt(1), rcx=KnownInt(3))
    g = generalize(a, b)
    assert g.regs[GPR.RAX] == KnownInt(1)
    assert g.regs[GPR.RCX] is None


def test_generalize_memory_disagreement_goes_dirty():
    a = make_world()
    b = make_world()
    a.mem[stack_key(-8)] = KnownInt(1)
    b.mem[stack_key(-8)] = KnownInt(2)
    g = generalize(a, b)
    assert g.mem[stack_key(-8)] is None


def test_generalize_demotes_snapshot_when_register_diverges():
    snap = RegSnapshot(GPR.RSI, 0)
    a = make_world(rsi=KnownInt(7))
    b = make_world()
    a.mem[stack_key(-16)] = snap
    b.mem[stack_key(-16)] = snap
    g = generalize(a, b)
    assert g.mem[stack_key(-16)] is None


def test_known_float_bit_pattern_identity():
    assert KnownFloat(0.0) != KnownFloat(-0.0)
    assert KnownFloat(1.5) == KnownFloat(1.5)


# ------------------------------------------------------------- properties
values = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=2**64 - 1).map(KnownInt),
    st.integers(min_value=-512, max_value=512).map(StackRel),
)


@st.composite
def worlds(draw):
    w = World.entry_world()
    for reg in (GPR.RAX, GPR.RCX, GPR.RDX):
        w.regs[reg] = draw(values)
    for offset in (-8, -16):
        v = draw(values)
        if v is not None or draw(st.booleans()):
            w.mem[stack_key(offset)] = v
    return w


@given(a=worlds(), b=worlds())
def test_generalize_is_commutative_on_digests(a, b):
    assert generalize(a, b) == generalize(b, a)


@given(a=worlds())
def test_generalize_idempotent(a):
    g = generalize(a, a)
    # self-join keeps all knowledge except snapshot corner cases (none here)
    assert g == a or g.known_count <= a.known_count


@given(a=worlds(), b=worlds())
def test_everything_migrates_into_the_generalization(a, b):
    g = generalize(a, b)
    assert migration_mismatch(a, g) == []
    assert migration_mismatch(b, g) == []


@given(a=worlds(), b=worlds())
def test_generalize_never_gains_knowledge(a, b):
    g = generalize(a, b)
    assert g.known_count <= min(a.known_count, b.known_count) + len(g.mem)
    # regs specifically never gain
    for reg in GPR:
        if g.regs[reg] is not None:
            assert g.regs[reg] == a.regs[reg] == b.regs[reg]
