"""Known-world state unit + property tests (lattice laws the tracer's
correctness rests on)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.known import (
    KnownFloat, KnownInt, RegSnapshot, StackRel, World,
    abs_key, generalize, materialization_needs, migration_mismatch, stack_key,
)
from repro.isa.flags import Flag
from repro.isa.registers import GPR, XMM


def make_world(**regs) -> World:
    w = World.entry_world()
    for name, value in regs.items():
        w.regs[GPR[name.upper()]] = value
    return w


def test_entry_world_only_rsp_known():
    w = World.entry_world()
    assert w.regs[GPR.RSP] == StackRel(0)
    assert all(w.regs[r] is None for r in GPR if r is not GPR.RSP)
    assert all(v is None for v in w.xmm.values())


def test_digest_equality_and_hash():
    a = make_world(rax=KnownInt(5))
    b = make_world(rax=KnownInt(5))
    assert a == b and hash(a) == hash(b)
    b.regs[GPR.RAX] = KnownInt(6)
    assert a != b


def test_digest_ignores_flags():
    a = make_world()
    b = make_world()
    a.flags[Flag.ZF] = True
    assert a == b


def test_copy_is_deep_enough():
    a = make_world(rax=KnownInt(1))
    a.mem[stack_key(-8)] = KnownInt(2)
    b = a.copy()
    b.regs[GPR.RAX] = None
    b.mem[stack_key(-8)] = None
    assert a.regs[GPR.RAX] == KnownInt(1)
    assert a.mem[stack_key(-8)] == KnownInt(2)


def test_migration_subset_rule():
    rich = make_world(rax=KnownInt(1), rcx=KnownInt(2))
    poor = make_world(rax=KnownInt(1))
    assert migration_mismatch(rich, poor) == []        # rich -> poor ok
    assert migration_mismatch(poor, rich) != []        # poor lacks rcx


def test_migration_value_conflict():
    a = make_world(rax=KnownInt(1))
    b = make_world(rax=KnownInt(2))
    assert migration_mismatch(a, b) != []


def test_migration_memory_rules():
    src = make_world()
    dst = make_world()
    src.mem[abs_key(0x1000)] = KnownInt(5)
    dst.mem[abs_key(0x1000)] = None  # dirty: runtime-live expected
    assert migration_mismatch(src, dst) == []
    _, _, mem_keys = materialization_needs(src, dst)
    assert abs_key(0x1000) in mem_keys


def test_snapshot_alias_blocks_materializing_migration():
    # dst folds a cell to rsi; src would materialize rsi on the edge,
    # which clobbers the aliased content -> must be incompatible
    src = make_world(rsi=KnownInt(7))
    dst = make_world()
    snap = RegSnapshot(GPR.RSI, 0)
    src.mem[stack_key(-16)] = snap
    dst.mem[stack_key(-16)] = snap
    assert migration_mismatch(src, dst) != []


def test_generalize_keeps_agreement_drops_conflict():
    a = make_world(rax=KnownInt(1), rcx=KnownInt(2))
    b = make_world(rax=KnownInt(1), rcx=KnownInt(3))
    g = generalize(a, b)
    assert g.regs[GPR.RAX] == KnownInt(1)
    assert g.regs[GPR.RCX] is None


def test_generalize_memory_disagreement_goes_dirty():
    a = make_world()
    b = make_world()
    a.mem[stack_key(-8)] = KnownInt(1)
    b.mem[stack_key(-8)] = KnownInt(2)
    g = generalize(a, b)
    assert g.mem[stack_key(-8)] is None


def test_generalize_demotes_snapshot_when_register_diverges():
    snap = RegSnapshot(GPR.RSI, 0)
    a = make_world(rsi=KnownInt(7))
    b = make_world()
    a.mem[stack_key(-16)] = snap
    b.mem[stack_key(-16)] = snap
    g = generalize(a, b)
    assert g.mem[stack_key(-16)] is None


def test_known_float_bit_pattern_identity():
    assert KnownFloat(0.0) != KnownFloat(-0.0)
    assert KnownFloat(1.5) == KnownFloat(1.5)


# ------------------------------------------------------------- properties
values = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=2**64 - 1).map(KnownInt),
    st.integers(min_value=-512, max_value=512).map(StackRel),
)


@st.composite
def worlds(draw):
    w = World.entry_world()
    for reg in (GPR.RAX, GPR.RCX, GPR.RDX):
        w.regs[reg] = draw(values)
    for offset in (-8, -16):
        v = draw(values)
        if v is not None or draw(st.booleans()):
            w.mem[stack_key(offset)] = v
    return w


@given(a=worlds(), b=worlds())
def test_generalize_is_commutative_on_digests(a, b):
    assert generalize(a, b) == generalize(b, a)


@given(a=worlds())
def test_generalize_idempotent(a):
    g = generalize(a, a)
    # self-join keeps all knowledge except snapshot corner cases (none here)
    assert g == a or g.known_count <= a.known_count


@given(a=worlds(), b=worlds())
def test_everything_migrates_into_the_generalization(a, b):
    g = generalize(a, b)
    assert migration_mismatch(a, g) == []
    assert migration_mismatch(b, g) == []


@given(a=worlds(), b=worlds())
def test_generalize_never_gains_knowledge(a, b):
    g = generalize(a, b)
    assert g.known_count <= min(a.known_count, b.known_count) + len(g.mem)
    # regs specifically never gain
    for reg in GPR:
        if g.regs[reg] is not None:
            assert g.regs[reg] == a.regs[reg] == b.regs[reg]


# ----------------------------------------------------------------- CowMem
from repro.core.known import CowMem  # noqa: E402


def test_cowmem_fork_shares_base_o_delta():
    """Forking must share the base dict (O(delta), the whole point)."""
    w = World.entry_world()
    for i in range(10):
        w.mem[stack_key(-8 * i)] = KnownInt(i)
    child = w.copy()
    assert child.mem._base is w.mem._base
    # mutating the child never leaks into the parent, and vice versa
    child.mem[stack_key(-80)] = KnownInt(99)
    w.mem[stack_key(-88)] = KnownInt(77)
    assert stack_key(-80) not in w.mem
    assert stack_key(-88) not in child.mem


def test_cowmem_digest_cached_across_unmutated_forks():
    w = World.entry_world()
    w.mem[abs_key(0x1000)] = KnownInt(1)
    first = w.digest()
    child = w.copy()
    assert child.mem.snapshot_items() is w.mem.snapshot_items()
    assert child.digest() == first
    child.mem[abs_key(0x1008)] = KnownInt(2)
    assert child.digest() != first
    assert w.digest() == first


def test_cowmem_delete_and_readd_matches_dict_order():
    plain: dict = {}
    cow = CowMem()
    for target in (plain, cow):
        target[("a", 1)] = "one"
        target[("a", 2)] = "two"
        target[("a", 3)] = "three"
        del target[("a", 2)]
        target[("a", 2)] = "again"      # re-added: moves to the end
        target[("a", 1)] = "overwrite"  # overwrite: keeps its position
    assert list(plain.items()) == list(cow.items())
    assert len(cow) == len(plain)


def test_cowmem_layered_lookup_and_pop():
    base = CowMem({("a", 1): KnownInt(1), ("a", 2): KnownInt(2)})
    fork = base.fork()
    del fork[("a", 1)]
    assert ("a", 1) not in fork and ("a", 1) in base
    assert fork.get(("a", 1), "absent") == "absent"
    assert fork.pop(("a", 1), None) is None
    assert fork.pop(("a", 2)) == KnownInt(2)
    assert len(fork) == 0 and len(base) == 2
    try:
        fork.pop(("a", 9))
        raise AssertionError("expected KeyError")
    except KeyError:
        pass


def test_cowmem_flatten_threshold_preserves_content_and_sharers():
    parent = CowMem({("a", i): i for i in range(4)})
    fork = parent.fork()
    for i in range(CowMem.FLATTEN_THRESHOLD + 4):
        fork[("a", 100 + i)] = i
    before = dict(fork.items())
    sibling = fork.fork()  # crosses the flatten threshold
    assert dict(sibling.items()) == before == dict(fork.items())
    # the flatten rebuilt fork's base without touching the parent's view
    assert dict(parent.items()) == {("a", i): i for i in range(4)}


@given(st.lists(st.tuples(st.sampled_from(["set", "del", "fork"]),
                          st.integers(0, 7), st.integers(0, 99)),
                max_size=60))
def test_cowmem_random_ops_match_plain_dict(ops):
    """Property: a CowMem fork chain behaves exactly like dict copies."""
    cow, plain = CowMem(), {}
    for action, key, value in ops:
        k = ("a", key)
        if action == "set":
            cow[k] = value
            plain[k] = value
        elif action == "del":
            if k in plain:
                del cow[k]
                del plain[k]
            else:
                assert k not in cow
        else:
            cow = cow.fork()
            plain = dict(plain)
        assert len(cow) == len(plain)
        assert dict(cow.items()) == plain
        assert sorted(cow) == sorted(plain)
    assert tuple(sorted(plain.items())) == cow.snapshot_items()
