"""Differential fuzzing of the rewriter.

A seeded generator produces random (but total and terminating) minic
functions; each is rewritten under several knownness configurations and
must agree with the original on argument sweeps.  This is the strongest
soundness net in the suite: it exercises folding, flag tracking, block
forks, unrolling, migration, snapshots, and compensation in random
combinations no hand-written test would find.

Division/modulo denominators are generated as ``(expr | 1)`` so they are
never zero; shift counts are small literals; loops have literal bounds.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar,
)
from repro.machine.vm import Machine


class ProgramGen:
    """Deterministic random minic function generator."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.vars: list[str] = []
        self.tmp = 0

    def fresh(self) -> str:
        self.tmp += 1
        return f"t{self.tmp}"

    def expr(self, depth: int) -> str:
        r = self.rng
        if depth <= 0 or r.random() < 0.3:
            choices = self.vars + [str(r.randint(-20, 20))]
            return r.choice(choices)
        kind = r.random()
        a = self.expr(depth - 1)
        b = self.expr(depth - 1)
        if kind < 0.45:
            op = r.choice(["+", "-", "*"])
            return f"({a} {op} {b})"
        if kind < 0.55:
            op = r.choice(["/", "%"])
            return f"({a} {op} (({b}) | 1))"
        if kind < 0.7:
            op = r.choice(["&", "|", "^"])
            return f"({a} {op} {b})"
        if kind < 0.8:
            return f"({a} {r.choice(['<<', '>>'])} {r.randint(0, 7)})"
        if kind < 0.95:
            op = r.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"({a} {op} {b})"
        return f"(-({a}))"

    def stmt(self, depth: int) -> str:
        r = self.rng
        kind = r.random()
        if kind < 0.35 or depth <= 0:
            target = r.choice(self.vars)
            return f"{target} = {self.expr(2)};"
        if kind < 0.55:
            name = self.fresh()
            line = f"long {name} = {self.expr(2)};"
            self.vars.append(name)
            return line
        if kind < 0.8:
            cond = self.expr(1)
            then = self._scoped(depth - 1)
            if r.random() < 0.5:
                return f"if ({cond}) {{ {then} }}"
            els = self._scoped(depth - 1)
            return f"if ({cond}) {{ {then} }} else {{ {els} }}"
        bound = r.randint(1, 5)
        body = self._scoped(depth - 1)
        i = self.fresh()
        return f"for (long {i} = 0; {i} < {bound}; {i}++) {{ {body} }}"

    def _scoped(self, depth: int) -> str:
        """Generate a nested statement; declarations inside it go out of
        scope afterwards (mirroring minic's block scoping)."""
        saved = list(self.vars)
        out = self.stmt(depth)
        self.vars = saved
        return out

    def function(self, arity: int = 2, statements: int = 5) -> str:
        params = [f"p{k}" for k in range(arity)]
        self.vars = list(params)
        body = [f"long acc = {params[0]};"]
        self.vars.append("acc")
        for _ in range(statements):
            body.append(self.stmt(2))
        body.append(f"return acc + {self.expr(2)};")
        param_list = ", ".join(f"long {p}" for p in params)
        return f"noinline long fuzzed({param_list}) {{\n" + "\n".join(body) + "\n}"


ARG_SWEEP = [(0, 0), (1, -1), (7, 3), (-12, 5), (100, -100), (2**33, 9)]


@pytest.mark.parametrize("seed", range(30))
def test_fuzzed_function_rewrites_faithfully(seed):
    source = ProgramGen(seed).function()
    machine = Machine()
    machine.load(source)

    rng = random.Random(1000 + seed)
    configs = [
        [],                 # nothing known
        [1], [2], [1, 2],   # every knownness subset
    ]
    for known in configs:
        conf = brew_init_conf()
        example = ARG_SWEEP[rng.randrange(len(ARG_SWEEP))]
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.3:
            brew_setfunc(conf, None, force_unknown_results=True)
        if rng.random() < 0.3:
            brew_setfunc(conf, None, conditionals_unknown=True)
        if rng.random() < 0.3:
            conf.variant_threshold = rng.choice([2, 4, 8])
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.25:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in ARG_SWEEP:
            effective = tuple(
                example[i] if (i + 1) in known else args[i] for i in range(2)
            )
            want = machine.call("fuzzed", *effective).int_return
            got = machine.call(result.entry, *effective).int_return
            assert got == want, (seed, known, effective, source)


@pytest.mark.parametrize("seed", range(30, 40))
def test_fuzzed_compiler_opt_levels_agree(seed):
    """The compiler side of the differential net: -O0/-O1/-O2 agree."""
    source = ProgramGen(seed).function(arity=2, statements=4)
    machines = []
    for opt in (0, 1, 2):
        m = Machine()
        m.load(source, opt=opt)
        machines.append(m)
    for args in ARG_SWEEP:
        values = [m.call("fuzzed", *args).int_return for m in machines]
        assert values[0] == values[1] == values[2], (seed, args, source)


class FloatProgramGen(ProgramGen):
    """Random double-typed functions (no division by dynamic values to
    keep results comparable bit-for-bit; multiplication, addition,
    subtraction, literals and comparisons only)."""

    def expr(self, depth: int) -> str:  # type: ignore[override]
        r = self.rng
        if depth <= 0 or r.random() < 0.3:
            lits = [f"{r.randint(-8, 8)}.{r.randint(0, 99):02d}"]
            return r.choice(self.vars + lits)
        op = r.choice(["+", "-", "*", "+", "-"])
        return f"({self.expr(depth - 1)} {op} {self.expr(depth - 1)})"

    def stmt(self, depth: int) -> str:  # type: ignore[override]
        r = self.rng
        kind = r.random()
        if kind < 0.4 or depth <= 0:
            return f"{r.choice(self.vars)} = {self.expr(2)};"
        if kind < 0.6:
            name = self.fresh()
            line = f"double {name} = {self.expr(2)};"
            self.vars.append(name)
            return line
        if kind < 0.85:
            cond = f"({self.expr(1)} < {self.expr(1)})"
            return f"if ({cond}) {{ {self._scoped(depth - 1)} }}"
        i = self.fresh()
        return (f"for (long {i} = 0; {i} < {r.randint(1, 4)}; {i}++) "
                f"{{ {self._scoped(depth - 1)} }}")

    def function(self, arity: int = 2, statements: int = 4) -> str:  # type: ignore[override]
        params = [f"p{k}" for k in range(arity)]
        self.vars = list(params)
        body = [f"double acc = {params[0]};"]
        self.vars.append("acc")
        for _ in range(statements):
            body.append(self.stmt(2))
        body.append(f"return acc + {self.expr(2)};")
        param_list = ", ".join(f"double {p}" for p in params)
        return f"noinline double fuzzed({param_list}) {{\n" + "\n".join(body) + "\n}"


FLOAT_SWEEP = [(0.0, 0.0), (1.5, -2.25), (3.0, 0.125), (-7.5, 7.5)]


@pytest.mark.parametrize("seed", range(40, 55))
def test_fuzzed_float_functions(seed):
    source = FloatProgramGen(seed).function()
    machine = Machine()
    machine.load(source)
    rng = random.Random(2000 + seed)
    for known in ([], [1], [2], [1, 2]):
        conf = brew_init_conf()
        example = FLOAT_SWEEP[rng.randrange(len(FLOAT_SWEEP))]
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.3:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in FLOAT_SWEEP:
            effective = tuple(
                example[i] if (i + 1) in known else args[i] for i in range(2)
            )
            want = machine.call("fuzzed", *effective).float_return
            got = machine.call(result.entry, *effective).float_return
            # identical operation order -> bit-identical results
            assert got == want, (seed, known, effective, source)


@pytest.mark.parametrize("seed", range(55, 65))
def test_fuzzed_call_graphs_inline_faithfully(seed):
    """Two random helpers + a random caller: exercises inlining, shadow
    stack depth, and per-function config restoration."""
    rng = random.Random(seed)
    g1 = ProgramGen(seed * 3 + 1)
    helper1 = g1.function(arity=2, statements=2).replace("fuzzed", "h1")
    g2 = ProgramGen(seed * 3 + 2)
    helper2 = g2.function(arity=1, statements=2).replace("fuzzed", "h2")
    caller = f"""
    noinline long fuzzed(long a, long b) {{
        long x = h1(a + 1, b);
        long y = h2(x ^ b);
        if (y > x) return h1(y, a) - x;
        return x + y;
    }}
    """
    machine = Machine()
    machine.load(helper1 + "\n" + helper2 + "\n" + caller)
    for known in ([], [1], [2]):
        conf = brew_init_conf()
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.5:
            # keep one helper out-of-line: tests ABI compensation
            conf.set_function(machine.symbol("h1"), inline=False)
        result = brew_rewrite(machine, conf, "fuzzed", 5, 9)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in ARG_SWEEP:
            effective = tuple(
                (5, 9)[i] if (i + 1) in known else args[i] for i in range(2)
            )
            want = machine.call("fuzzed", *effective).int_return
            got = machine.call(result.entry, *effective).int_return
            assert got == want, (seed, known, effective)


class PointerProgramGen(ProgramGen):
    """Adds address-of-local and pointer-indirection statements, which
    stress the frame-escape analysis and unknown-address store paths."""

    def __init__(self, seed: int) -> None:
        super().__init__(seed)
        self.pointers: list[str] = []

    def stmt(self, depth: int) -> str:  # type: ignore[override]
        r = self.rng
        roll = r.random()
        if roll < 0.15 and self.vars:
            target = r.choice(self.vars)
            name = self.fresh()
            self.pointers.append(name)
            return f"long *{name} = &{target};"
        if roll < 0.3 and self.pointers:
            p = r.choice(self.pointers)
            return f"*{p} = {self.expr(2)};"
        if roll < 0.4 and self.pointers:
            p = r.choice(self.pointers)
            target = r.choice(self.vars)
            return f"{target} = *{p} + {self.expr(1)};"
        return super().stmt(depth)

    def _scoped(self, depth: int) -> str:  # type: ignore[override]
        saved_vars = list(self.vars)
        saved_ptrs = list(self.pointers)
        out = self.stmt(depth)
        self.vars = saved_vars
        self.pointers = saved_ptrs
        return out


@pytest.mark.parametrize("seed", range(65, 85))
def test_fuzzed_pointer_programs(seed):
    source = PointerProgramGen(seed).function(arity=2, statements=6)
    machine = Machine()
    machine.load(source)
    rng = random.Random(3000 + seed)
    for known in ([], [1], [2], [1, 2]):
        conf = brew_init_conf()
        example = ARG_SWEEP[rng.randrange(len(ARG_SWEEP))]
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.3:
            brew_setfunc(conf, None, force_unknown_results=True)
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.25:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in ARG_SWEEP:
            effective = tuple(
                example[i] if (i + 1) in known else args[i] for i in range(2)
            )
            want = machine.call("fuzzed", *effective).int_return
            got = machine.call(result.entry, *effective).int_return
            assert got == want, (seed, known, effective, source)


ARG_SWEEP3 = [
    (0, 0, 0), (1, -1, 2), (7, 3, -4), (-12, 5, 6),
    (100, -100, 1), (2**33, 9, -2),
]


@pytest.mark.parametrize("seed", range(85, 130))
def test_fuzzed_random_knownness_splits(seed):
    """Arity-3 functions where the known/unknown split itself is drawn
    from the seed: every subset of {1,2,3} is reachable, so folding has
    to cope with knowledge holes in arbitrary argument positions."""
    source = ProgramGen(seed).function(arity=3, statements=5)
    machine = Machine()
    machine.load(source)
    rng = random.Random(4000 + seed)
    splits = [sorted(rng.sample([1, 2, 3], rng.randint(0, 3))) for _ in range(4)]
    for known in splits:
        conf = brew_init_conf()
        example = ARG_SWEEP3[rng.randrange(len(ARG_SWEEP3))]
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.3:
            brew_setfunc(conf, None, conditionals_unknown=True)
        if rng.random() < 0.3:
            conf.variant_threshold = rng.choice([2, 4, 8])
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.25:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in ARG_SWEEP3:
            effective = tuple(
                example[i] if (i + 1) in known else args[i] for i in range(3)
            )
            want = machine.call("fuzzed", *effective).int_return
            got = machine.call(result.entry, *effective).int_return
            assert got == want, (seed, known, effective, source)


class AliasProgramGen:
    """Read-only functions over two pointer parameters and an index:
    ``long fuzzed(long *a, long *b, long i)``.  Terms read ``a``/``b``
    at literal and dynamic (``i & 3``) offsets; the function never
    writes memory, so folded known reads stay valid across the sweep.
    Declaring both pointers PTR_TO_KNOWN over one buffer gives the
    rewriter overlapping (aliasing) known ranges."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.vars = ["i"]
        self.tmp = 0

    def term(self) -> str:
        r = self.rng
        roll = r.random()
        if roll < 0.25:
            return f"a[{r.randint(0, 3)}]"
        if roll < 0.5:
            return f"b[{r.randint(0, 3)}]"
        if roll < 0.6:
            return f"{r.choice(['a', 'b'])}[i & 3]"
        return r.choice(self.vars + [str(r.randint(-9, 9))])

    def expr(self, depth: int) -> str:
        r = self.rng
        if depth <= 0 or r.random() < 0.35:
            return self.term()
        a, b = self.expr(depth - 1), self.expr(depth - 1)
        roll = r.random()
        if roll < 0.5:
            return f"({a} {r.choice(['+', '-', '*'])} {b})"
        if roll < 0.7:
            return f"({a} {r.choice(['&', '|', '^'])} {b})"
        if roll < 0.85:
            return f"({a} {r.choice(['<', '>=', '=='])} {b})"
        return f"({a} >> {r.randint(0, 5)})"

    def function(self, statements: int = 4) -> str:
        body = ["long acc = a[0];"]
        self.vars.append("acc")
        for _ in range(statements):
            r = self.rng
            if r.random() < 0.5:
                name = f"t{self.tmp}"
                self.tmp += 1
                body.append(f"long {name} = {self.expr(2)};")
                self.vars.append(name)
            elif r.random() < 0.5:
                body.append(f"if ({self.expr(1)}) {{ acc = {self.expr(2)}; }}")
            else:
                body.append(f"acc = acc + {self.expr(2)};")
        body.append(f"return acc ^ {self.expr(2)};")
        return ("noinline long fuzzed(long *a, long *b, long i) {\n"
                + "\n".join(body) + "\n}")


@pytest.mark.parametrize("seed", range(130, 160))
def test_fuzzed_aliasing_known_memory(seed):
    """Aliasing memory configurations: two pointer parameters into one
    buffer at seed-chosen offsets, under every PTR_TO_KNOWN subset.
    With both declared known the ranges overlap; with one unknown the
    same cells are read both folded and at runtime — they must agree."""
    from repro.core import BREW_PTR_TO_KNOWN

    source = AliasProgramGen(seed).function()
    machine = Machine()
    machine.load(source)
    base = machine.image.malloc(64)
    rng = random.Random(5000 + seed)
    for word in range(8):
        machine.memory.write_u64(base + 8 * word, rng.randint(-50, 50) % 2**64)
    offsets = [(0, 0), (0, 8), (16, 0), (8, 24)]
    i_sweep = (0, 1, 2, 3, 7, -1)
    for known in ([], [1], [2], [1, 2], [1, 2, 3]):
        a_off, b_off = offsets[rng.randrange(len(offsets))]
        example = (base + a_off, base + b_off, i_sweep[rng.randrange(len(i_sweep))])
        conf = brew_init_conf()
        for index in known:
            brew_setpar(
                conf, index, BREW_KNOWN if index == 3 else BREW_PTR_TO_KNOWN
            )
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.25:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for a_off2, b_off2 in offsets:
            for i in i_sweep:
                args = (base + a_off2, base + b_off2, i)
                effective = tuple(
                    example[k] if (k + 1) in known else args[k] for k in range(3)
                )
                want = machine.call("fuzzed", *effective).int_return
                got = machine.call(result.entry, *effective).int_return
                assert got == want, (seed, known, effective, source)


class FlagProgramGen(ProgramGen):
    """Comparison-heavy integer functions with wide shift counts: the
    generated code keeps materialising and consuming condition flags
    around sign/overflow boundaries, so a rewriter that folds a compare
    with the wrong width or signedness diverges immediately."""

    def expr(self, depth: int) -> str:  # type: ignore[override]
        r = self.rng
        if depth <= 0 or r.random() < 0.3:
            return r.choice(self.vars + [str(r.randint(-20, 20))])
        a = self.expr(depth - 1)
        b = self.expr(depth - 1)
        roll = r.random()
        if roll < 0.4:
            op = r.choice(["<", "<=", ">", ">=", "==", "!="])
            return f"(({a} - {b}) {op} {self.expr(depth - 1)})"
        if roll < 0.6:
            return f"({a} {r.choice(['+', '-', '*'])} {b})"
        if roll < 0.8:
            return f"({a} {r.choice(['<<', '>>'])} {r.choice([1, 7, 31, 62, 63])})"
        return f"({a} {r.choice(['&', '|', '^'])} {b})"

    def stmt(self, depth: int) -> str:  # type: ignore[override]
        r = self.rng
        if r.random() < 0.5 and depth > 0:
            cond = self.expr(2)
            then = self._scoped(depth - 1)
            els = self._scoped(depth - 1)
            return f"if ({cond}) {{ {then} }} else {{ {els} }}"
        return super().stmt(depth)


FLAG_SWEEP = [
    (0, 0), (-1, 1), (1, -1),
    (2**63 - 1, -(2**63)), (-(2**63), 2**63 - 1),
    (2**62, -(2**62)), (2**31, -(2**31)),
]


@pytest.mark.parametrize("seed", range(160, 205))
def test_fuzzed_flag_sensitive_arithmetic(seed):
    """Flag-sensitive arithmetic swept across the INT64 boundaries where
    carry, overflow and sign disagree (INT64_MIN/MAX, +/-2^62)."""
    source = FlagProgramGen(seed).function(arity=2, statements=4)
    machine = Machine()
    machine.load(source)
    rng = random.Random(6000 + seed)
    for known in ([], [1], [2], [1, 2]):
        conf = brew_init_conf()
        example = FLAG_SWEEP[rng.randrange(len(FLAG_SWEEP))]
        for index in known:
            brew_setpar(conf, index, BREW_KNOWN)
        if rng.random() < 0.3:
            brew_setfunc(conf, None, conditionals_unknown=True)
        if rng.random() < 0.3:
            conf.deferred_spills = False
        if rng.random() < 0.25:
            conf.passes = ("regrename", "dce", "redundant-load", "peephole")
        result = brew_rewrite(machine, conf, "fuzzed", *example)
        assert result.ok, (seed, known, result.reason, result.message)
        for args in FLAG_SWEEP:
            effective = tuple(
                example[i] if (i + 1) in known else args[i] for i in range(2)
            )
            want = machine.call("fuzzed", *effective).int_return
            got = machine.call(result.entry, *effective).int_return
            assert got == want, (seed, known, effective, source)
