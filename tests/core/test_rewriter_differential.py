"""Differential testing: for every function in a corpus and every
knownness configuration, the rewritten code must agree with the original
on sweeps of arguments (the drop-in contract, checked in bulk).
"""

from __future__ import annotations

import itertools
import math

import pytest

from repro.core import (
    BREW_KNOWN, brew_init_conf, brew_rewrite, brew_setfunc, brew_setpar,
)
from repro.machine.vm import Machine

# (name, source, arg domains); every function is total over its domain
CORPUS = [
    (
        "arith_mix",
        """
        noinline long arith_mix(long a, long b) {
            return (a * 3 - b / 2) % 17 + ((a & b) | (a ^ 5)) - (b << 2) + (a >> 1);
        }
        """,
        [(-9, 4), (12, 5), (100, -7), (0, 1), (2**31, 3)],
    ),
    (
        "branchy",
        """
        noinline long branchy(long a, long b) {
            if (a > b) { if (a > 2 * b) return a - b; return a + b; }
            if (a == b) return 42;
            return b - a;
        }
        """,
        [(1, 2), (2, 1), (5, 2), (3, 3), (-4, -9)],
    ),
    (
        "looped",
        """
        noinline long looped(long n, long k) {
            long total = 0;
            for (long i = 0; i < n; i++) {
                if (i % k == 0) total += i;
                else total -= 1;
            }
            return total;
        }
        """,
        [(0, 1), (5, 2), (12, 3), (20, 7)],
    ),
    (
        "floaty",
        """
        noinline double floaty(double x, double y) {
            double t = x * y;
            if (t < 0.0) t = 0.0 - t;
            return t + x / (y + 4.0);
        }
        """,
        [(1.0, 2.0), (-3.0, 0.5), (2.5, -1.0), (0.0, 1.0)],
    ),
    (
        "mem_walk",
        """
        long scratch[16];
        noinline long mem_walk(long seed, long steps) {
            for (long i = 0; i < 16; i++) scratch[i] = seed + i * 3;
            long pos = 0;
            for (long s = 0; s < steps; s++)
                pos = scratch[pos % 16] % 16;
            if (pos < 0) pos = 0 - pos;
            return scratch[pos];
        }
        """,
        [(3, 0), (5, 4), (11, 9)],
    ),
    (
        "caller",
        """
        noinline long helper(long x, long y) { return x * y + 1; }
        noinline long caller(long a, long b) {
            return helper(a, b) + helper(b, 2) - helper(a + b, 0);
        }
        """,
        [(1, 2), (7, -3), (0, 0)],
    ),
]


def _configs(arity: int):
    """Every subset of parameters declared known."""
    for mask in range(2**arity):
        yield [i + 1 for i in range(arity) if mask & (1 << i)]


@pytest.mark.parametrize("name,source,domain", CORPUS, ids=[c[0] for c in CORPUS])
def test_differential_all_known_subsets(name, source, domain):
    machine = Machine()
    machine.load(source)
    arity = len(domain[0])
    for known in _configs(arity):
        for force_unknown in (False, True):
            # trace with the first domain point as the example arguments
            example = domain[0]
            conf = brew_init_conf()
            for index in known:
                brew_setpar(conf, index, BREW_KNOWN)
            if force_unknown:
                brew_setfunc(conf, None, force_unknown_results=True)
            result = brew_rewrite(machine, conf, name, *example)
            assert result.ok, (known, force_unknown, result.message)
            for args in domain:
                # known params must match the traced values; substitute
                effective = tuple(
                    example[i] if (i + 1) in known else args[i]
                    for i in range(arity)
                )
                want = machine.call(name, *effective)
                got = machine.call(result.entry, *effective)
                if name == "floaty":
                    assert math.isclose(
                        got.float_return, want.float_return, rel_tol=1e-12
                    ), (known, force_unknown, effective)
                else:
                    assert got.int_return == want.int_return, (
                        known, force_unknown, effective,
                    )


def test_differential_composed_rewrites():
    """Rewriting a rewrite (Sec. III.A composability) stays correct for
    every split of the known set."""
    machine = Machine()
    machine.load("""
    noinline long f(long a, long b, long c) {
        long acc = a * 2;
        for (long i = 0; i < b; i++) acc += c - i;
        return acc;
    }
    """)
    example = (3, 4, 5)
    for first, second in itertools.permutations([1, 2, 3], 2):
        conf1 = brew_init_conf()
        brew_setpar(conf1, first, BREW_KNOWN)
        r1 = brew_rewrite(machine, conf1, "f", *example)
        assert r1.ok, r1.message
        conf2 = brew_init_conf()
        brew_setpar(conf2, second, BREW_KNOWN)
        r2 = brew_rewrite(machine, conf2, r1.entry, *example)
        assert r2.ok, r2.message
        want = machine.call("f", *example).int_return
        assert machine.call(r2.entry, *example).int_return == want
