"""Register-renaming / copy-propagation pass tests."""

from __future__ import annotations

import math

import pytest

from repro.core import brew_init_conf, brew_rewrite, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.core.passes.regrename import rename_registers
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Mem, Reg
from repro.isa.registers import GPR, XMM
from repro.machine.image import Image
from repro.machine.vm import Machine


@pytest.fixture()
def image() -> Image:
    return Image()


def test_copy_propagates_through_uses(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.ADD, Reg(GPR.RCX), Reg(GPR.RAX)),
    ]
    out = rename_registers(insns, image)
    assert str(out[1]) == "add rcx, rdi"


def test_copy_propagates_into_address_components(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.MOVSD, FReg(XMM.XMM8), Mem(GPR.RAX, disp=-8)),
    ]
    out = rename_registers(insns, image)
    assert "[rdi-8]" in str(out[1])


def test_alias_dies_when_source_overwritten(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.MOV, Reg(GPR.RDI), Imm(0)),
        ins(Op.ADD, Reg(GPR.RCX), Reg(GPR.RAX)),
    ]
    out = rename_registers(insns, image)
    assert str(out[2]) == "add rcx, rax"  # NOT rdi


def test_alias_dies_when_dest_overwritten(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.MOV, Reg(GPR.RAX), Imm(5)),
        ins(Op.ADD, Reg(GPR.RCX), Reg(GPR.RAX)),
    ]
    out = rename_registers(insns, image)
    assert str(out[2]) == "add rcx, rax"


def test_self_copy_after_rename_dropped(image):
    insns = [
        ins(Op.MOVSD, FReg(XMM.XMM12), FReg(XMM.XMM8)),
        ins(Op.MOVSD, FReg(XMM.XMM8), FReg(XMM.XMM12)),  # becomes self-copy
        ins(Op.ADDSD, FReg(XMM.XMM8), FReg(XMM.XMM9)),
    ]
    out = rename_registers(insns, image)
    assert len(out) == 2


def test_barriers_clear_aliases(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.CALL, Imm(0x1000)),
        ins(Op.ADD, Reg(GPR.RCX), Reg(GPR.RAX)),
    ]
    out = rename_registers(insns, image)
    assert str(out[2]) == "add rcx, rax"


def test_rmw_destination_never_renamed(image):
    insns = [
        ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI)),
        ins(Op.ADD, Reg(GPR.RAX), Imm(1)),  # writes rax, must stay rax
    ]
    out = rename_registers(insns, image)
    assert str(out[1]) == "add rax, 1"


def test_end_to_end_semantics_preserved():
    m = Machine()
    m.load("""
    noinline double helper(double v) { return v * 2.0; }
    noinline double f(double a, double b) {
        double x = helper(a) + helper(b);
        return x - a;
    }
    """)
    conf = brew_init_conf()
    conf.passes = ("regrename", "dce", "peephole")
    result = brew_rewrite(m, conf, "f", 0.0, 0.0)
    assert result.ok, result.message
    for a, b in [(1.0, 2.0), (-3.5, 0.25)]:
        want = m.call("f", a, b).float_return
        got = m.call(result.entry, a, b).float_return
        assert math.isclose(got, want, rel_tol=1e-15)


def test_regrename_improves_grouped_stencil():
    from repro.models.stencil import StencilLab

    lab = StencilLab(xs=16, ys=16)
    plain = lab.rewrite_apply(grouped=True)
    assert plain.ok
    cleaned = lab.rewrite_apply(grouped=True,
                                passes=("regrename", "dce", "peephole"))
    assert cleaned.ok
    c_plain = lab.run_with_apply(plain.entry, 1, grouped=True)
    c_clean = lab.run_with_apply(cleaned.entry, 1, grouped=True)
    # identical answers, fewer cycles
    assert math.isclose(
        lab.checksum(lab.final_matrix), lab.checksum(lab.final_matrix)
    )
    assert c_clean.cycles <= c_plain.cycles
    assert cleaned.code_size <= plain.code_size
