"""Crash-safe persistence of specialization state: versioned CRC'd
snapshots, per-entry corruption rejection, quarantine/backoff restore."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN
from repro.core.manager import SpecializationManager
from repro.core.persist import (
    SNAPSHOT_MAGIC, load_manager, save_manager,
)
from repro.machine.vm import Machine
from repro.obs import Metrics
from repro.testing import FaultInjector

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
noinline long mix(long x, long k) { return x * x + k; }
"""


def _machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def _conf(**overrides):
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    for name, value in overrides.items():
        setattr(conf, name, value)
    return conf


def _warm_manager(machine) -> SpecializationManager:
    """A manager with two good entries and one quarantined failure."""
    manager = SpecializationManager(machine)
    assert manager.get(_conf(), "poly", 0, 3).ok
    assert manager.get(_conf(), "mix", 0, 7).ok
    doomed = manager.get(_conf(max_output_instructions=1), "poly", 0, 9)
    assert not doomed.ok
    return manager


# ------------------------------------------------------------ roundtrip
def test_roundtrip_restores_runnable_entries(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")

    machine = _machine()
    manager = SpecializationManager(machine)
    report = load_manager(manager, path)
    assert report.version_ok
    assert len(report.restored_ok) == 2 and len(report.restored_failed) == 1
    assert not report.rejected
    for key in report.restored_ok:
        result = manager.cached_result(key)
        assert result is not None and result.ok
        # the restored body runs at its recorded address, correctly
        if result.name.startswith("poly"):
            assert machine.call(result.entry, 5, 3).int_return == 5 * 3 + 3
        else:
            assert machine.call(result.entry, 5, 7).int_return == 5 * 5 + 7
    # a warm get serves the restored entry without rewriting again
    misses_before = manager.stats()["misses"]
    assert manager.get(_conf(), "poly", 0, 3).ok
    assert manager.stats()["misses"] == misses_before


def test_restored_quarantine_keeps_backing_off(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")

    manager = SpecializationManager(_machine())
    report = load_manager(manager, path)
    assert len(report.restored_failed) == 1
    # within the restored backoff window the failure is served from
    # quarantine — no rewrite attempt burns cycles on a doomed config
    result = manager.get(_conf(max_output_instructions=1), "poly", 0, 9)
    assert not result.ok
    assert manager.metrics.value("manager.quarantine_hits") >= 1


def test_allocator_advances_past_restored_bodies(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")
    machine = _machine()
    manager = SpecializationManager(machine)
    report = load_manager(manager, path)
    restored_entries = {
        manager.cached_result(k).entry for k in report.restored_ok
    }
    # a fresh rewrite after restore must not land on a restored body
    fresh = manager.get(_conf(), "poly", 0, 11)
    assert fresh.ok and fresh.entry not in restored_entries
    assert machine.call(fresh.entry, 5, 11).int_return == 5 * 11 + 11


def test_epoch_only_ratchets_forward(tmp_path):
    saved = _warm_manager(_machine())
    saved.epoch = 5
    path = save_manager(saved, tmp_path / "spec.snap")

    behind = SpecializationManager(_machine())
    load_manager(behind, path)
    assert behind.epoch == 5, "restored epoch must win over a smaller one"

    ahead = SpecializationManager(_machine())
    ahead.epoch = 9
    load_manager(ahead, path)
    assert ahead.epoch == 9, "a live epoch must never move backwards"


# ----------------------------------------------------------- corruption
def test_injected_bit_rot_rejects_exactly_one_record(tmp_path):
    saved = _warm_manager(_machine())
    path = tmp_path / "spec.snap"
    # record 1 is the meta header; nth=2 bit-rots the first entry record
    with FaultInjector("snapshot", nth=2) as fault:
        save_manager(saved, path)
    assert fault.fired

    metrics = Metrics()
    manager = SpecializationManager(_machine(), metrics=metrics)
    report = load_manager(manager, path)
    assert report.version_ok
    assert len(report.rejected) == 1
    assert report.rejected[0].reason == "snapshot-corrupt"
    assert report.restored == 2, "the other records restore normally"
    assert metrics.value("snapshot.rejected") == 1
    assert metrics.value("snapshot.restored") == 2


def test_on_disk_byte_flip_is_rejected_per_entry(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")
    lines = path.read_text().splitlines()
    # flip one byte inside the last record's JSON payload
    victim = lines[-1]
    mid = len(victim) // 2
    lines[-1] = victim[:mid] + chr(ord(victim[mid]) ^ 0x1) + victim[mid + 1:]
    path.write_text("\n".join(lines) + "\n")

    manager = SpecializationManager(_machine())
    report = load_manager(manager, path)
    assert len(report.rejected) == 1
    assert report.rejected[0].reason == "snapshot-corrupt"
    assert report.restored == 2


def test_version_mismatch_rejects_the_whole_snapshot(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")
    body = path.read_text().splitlines()
    body[0] = "REPRO-SNAP 999"
    path.write_text("\n".join(body) + "\n")

    metrics = Metrics()
    manager = SpecializationManager(_machine(), metrics=metrics)
    report = load_manager(manager, path)
    assert not report.version_ok and report.restored == 0
    assert metrics.value("snapshot.version_mismatch") == 1


def test_missing_snapshot_is_a_clean_cold_start(tmp_path):
    manager = SpecializationManager(_machine())
    report = load_manager(manager, tmp_path / "never-written.snap")
    assert not report.version_ok and report.restored == 0
    # and the manager still works
    assert manager.get(_conf(), "poly", 0, 3).ok


def test_save_is_atomic_no_tmp_left_behind(tmp_path):
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")
    assert path.exists()
    assert not list(tmp_path.glob("*.tmp"))
    assert path.read_text().splitlines()[0] == SNAPSHOT_MAGIC


# ------------------------------------------------- epoch forward-ratchet
def _service_ratchet_scenario(tmp_path, mode):
    """Restore a newer snapshot, then an older one, through the service
    path: the older restore must be rejected per entry (``snapshot-stale``,
    never a crash) and must not disturb the already-restored state."""
    from repro.service import RewriteService

    writer = RewriteService(_machine())
    writer.request(_conf(), "poly", 0, 3)
    writer.drain()
    old_path = tmp_path / "old.snap"
    writer.save_snapshot(old_path)
    # live invalidations advance the epoch; later snapshots embed it
    writer.manager.epoch = 7
    writer.request(_conf(), "mix", 0, 5)
    writer.drain()
    new_path = tmp_path / "new.snap"
    writer.save_snapshot(new_path)
    writer.close()

    machine = _machine()
    svc = RewriteService(machine, mode=mode)
    try:
        newer = svc.restore_snapshot(new_path)
        assert newer.version_ok and len(newer.restored_ok) == 2
        assert svc.manager.epoch == 7
        published_before = len(svc.table)
        assert published_before == 2

        older = svc.restore_snapshot(old_path)
        assert older.version_ok, "a stale snapshot is not a format error"
        assert older.restored == 0
        assert len(older.rejected) == 1
        assert all(f.reason == "snapshot-stale" for f in older.rejected)
        assert svc.manager.epoch == 7, "the epoch never moves backwards"
        assert len(svc.table) == published_before, "live state undisturbed"
        # the service still works end to end after the rejected restore
        entry = svc.request(_conf(), "poly", 0, 3)
        assert machine.call(entry, 5, 3).int_return == 5 * 3 + 3
    finally:
        svc.close()


def test_older_snapshot_after_newer_is_rejected_step_mode(tmp_path):
    _service_ratchet_scenario(tmp_path, "step")


def test_older_snapshot_after_newer_is_rejected_thread_mode(tmp_path):
    _service_ratchet_scenario(tmp_path, "thread")


def test_stale_rejection_is_per_entry_not_a_crash(tmp_path):
    """Every entry record of a stale snapshot is individually rejected
    with ``snapshot-stale``; the report is complete, nothing raises."""
    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")

    metrics = Metrics()
    manager = SpecializationManager(_machine(), metrics=metrics)
    manager.epoch = 3  # ahead of the snapshot's epoch 0
    report = load_manager(manager, path)
    assert report.version_ok
    assert report.restored == 0
    assert len(report.rejected) == 3, "one rejection per entry record"
    assert {f.reason for f in report.rejected} == {"snapshot-stale"}
    assert metrics.value("snapshot.rejected") == 3
    assert manager.epoch == 3


# --------------------------------------------------------- collision guard
def test_restore_onto_different_live_code_is_rejected(tmp_path):
    """A snapshot whose recorded body address now holds *different* live
    code (a foreign shard's snapshot restored into a machine that did
    its own rewrites) is rejected per entry as ``snapshot-collision`` —
    overwriting a live variant would corrupt answers silently."""
    saver = SpecializationManager(_machine())
    assert saver.get(_conf(), "poly", 0, 3).ok
    path = save_manager(saver, tmp_path / "foreign.snap")

    machine = _machine()
    manager = SpecializationManager(machine)
    # the deterministic allocator puts this machine's own first rewrite
    # at the same address the snapshot recorded — with different bytes
    own = manager.get(_conf(), "poly", 0, 4)
    assert own.ok
    report = load_manager(manager, path)
    assert len(report.rejected) == 1
    assert report.rejected[0].reason == "snapshot-collision"
    assert report.restored == 0
    # the live variant is untouched and still correct
    assert machine.call(own.entry, 5, 4).int_return == 5 * 4 + 4


def test_byte_identical_overlap_restores_idempotently(tmp_path):
    """Byte-identical overlap is NOT a collision: re-restoring the same
    snapshot (or two shards' identical deterministic rewrites) is fine."""
    saver = SpecializationManager(_machine())
    assert saver.get(_conf(), "poly", 0, 3).ok
    path = save_manager(saver, tmp_path / "spec.snap")

    machine = _machine()
    manager = SpecializationManager(machine)
    assert manager.get(_conf(), "poly", 0, 3).ok  # identical bytes land first
    report = load_manager(manager, path)
    assert not report.rejected
    assert len(report.restored_ok) == 1


def test_schema_mismatch_record_is_rejected(tmp_path):
    """A structurally valid line (good CRC, good JSON) whose record is
    missing fields must be rejected as snapshot-corrupt, not crash."""
    from repro.core.persist import _encode_record

    saved = _warm_manager(_machine())
    path = save_manager(saved, tmp_path / "spec.snap")
    lines = path.read_text().splitlines()
    lines.append(_encode_record({"kind": "entry", "key": "('orphan',)"}))
    lines.append(_encode_record({"kind": "mystery"}))
    path.write_text("\n".join(lines) + "\n")

    manager = SpecializationManager(_machine())
    report = load_manager(manager, path)
    assert len(report.rejected) == 2
    assert {f.reason for f in report.rejected} == {"snapshot-corrupt"}
    assert report.restored == 3
