"""Background rewrite service tests."""
