"""RewriteService behaviour: non-blocking misses, publication, coalescing,
invalidation withdrawal, thread mode, and the DispatchTable itself."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.core.dispatch import DispatchTable
from repro.core.manager import SpecializationManager
from repro.core.resilience import RewriteSupervisor
from repro.machine.vm import Machine
from repro.obs import Metrics
from repro.service import RewriteService

SOURCE = """
struct Cfg { long scale; long bias; };
noinline long apply_cfg(long x, struct Cfg *c) { return x * c->scale + c->bias; }
noinline long poly(long x, long k) { return x * k + k; }
"""


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def _poly_conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    return conf


# --------------------------------------------------------- dispatch table
def test_dispatch_table_publish_lookup_withdraw():
    table = DispatchTable()
    assert table.lookup("k") is None
    assert table.lookup("k", 7) == 7
    table.publish("k", 100)
    table.publish("j", 200)
    assert table.lookup("k") == 100 and "k" in table and len(table) == 2
    table.publish("k", 150)  # republish replaces atomically
    assert table.lookup("k") == 150
    assert table.withdraw(["k", "missing"]) == 1
    assert "k" not in table and len(table) == 1


# -------------------------------------------------------------- step mode
def test_cold_miss_returns_original_and_queues(machine):
    svc = RewriteService(machine)
    original = machine.image.resolve("poly")
    entry = svc.request(_poly_conf(), "poly", 0, 3)
    assert entry == original
    assert svc.pending() == 1
    # the original is immediately runnable — the caller never blocked
    assert machine.call(entry, 5, 3).int_return == 18
    stats = svc.stats()
    assert stats["cold_misses"] == 1 and stats["publishes"] == 0


def test_step_publishes_and_next_request_is_warm(machine):
    svc = RewriteService(machine)
    original = machine.image.resolve("poly")
    svc.request(_poly_conf(), "poly", 0, 3)
    assert svc.step() == 1
    assert svc.pending() == 0
    warm = svc.request(_poly_conf(), "poly", 123456, 3)  # unknown arg differs
    assert warm != original
    assert machine.call(warm, 5, 3).int_return == 18
    stats = svc.stats()
    assert stats["warm_hits"] == 1 and stats["publishes"] == 1


def test_duplicate_requests_coalesce(machine):
    svc = RewriteService(machine)
    svc.request(_poly_conf(), "poly", 0, 3)
    svc.request(_poly_conf(), "poly", 0, 3)
    svc.request(_poly_conf(), "poly", 7, 3)
    assert svc.pending() == 1, "same key must occupy one queue slot"
    assert svc.stats()["coalesced"] == 2
    assert svc.drain() == 1


def test_distinct_keys_queue_separately(machine):
    svc = RewriteService(machine)
    svc.request(_poly_conf(), "poly", 0, 3)
    svc.request(_poly_conf(), "poly", 0, 4)  # known arg differs: new key
    assert svc.pending() == 2
    assert svc.drain() == 2
    e3 = svc.request(_poly_conf(), "poly", 0, 3)
    e4 = svc.request(_poly_conf(), "poly", 0, 4)
    assert e3 != e4
    assert machine.call(e3, 5, 3).int_return == 18
    assert machine.call(e4, 5, 4).int_return == 24


def test_failed_rewrite_never_publishes(machine):
    svc = RewriteService(machine)
    conf = _poly_conf()
    conf.max_output_instructions = 1  # dooms the rewrite
    original = machine.image.resolve("poly")
    assert svc.request(conf, "poly", 0, 3) == original
    svc.drain()
    assert svc.request(conf, "poly", 0, 3) == original
    stats = svc.stats()
    assert stats["failures"] == 1 and stats["publishes"] == 0
    # the manager quarantined it, so the re-request coalesced into the
    # backoff window rather than re-queueing a doomed rewrite
    assert svc.manager.stats()["quarantined"] == 1


def test_invalidation_withdraws_published_entries(machine):
    svc = RewriteService(machine)
    cfg = machine.image.malloc(16)
    machine.memory.write_u64(cfg, 2)
    machine.memory.write_u64(cfg + 8, 10)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    original = machine.image.resolve("apply_cfg")
    svc.request(conf, "apply_cfg", 0, cfg)
    svc.drain()
    warm = svc.request(conf, "apply_cfg", 0, cfg)
    assert warm != original
    assert machine.call(warm, 5, cfg).int_return == 20
    # descriptor mutates: manager eviction must withdraw the table entry
    machine.memory.write_u64(cfg, 7)
    assert svc.manager.invalidate_memory(cfg, cfg + 8) == 1
    cold = svc.request(conf, "apply_cfg", 0, cfg)
    assert cold == original, "stale specialization must not be served"
    svc.drain()
    fresh = svc.request(conf, "apply_cfg", 0, cfg)
    assert machine.call(fresh, 5, cfg).int_return == 45
    assert svc.stats()["withdrawn"] >= 1


def test_service_routes_through_supervisor(machine):
    """A manager whose rewrites go through a supervisor charges the
    shared metrics registry end to end."""
    metrics = Metrics()
    supervisor = RewriteSupervisor(machine, metrics=metrics)
    manager = SpecializationManager(
        machine, rewrite_fn=supervisor.rewrite, metrics=metrics
    )
    svc = RewriteService(machine, manager=manager, metrics=metrics)
    svc.request(_poly_conf(), "poly", 0, 3)
    svc.drain()
    entry = svc.request(_poly_conf(), "poly", 0, 3)
    assert machine.call(entry, 5, 3).int_return == 18
    result = manager.get(_poly_conf(), "poly", 0, 3)  # cache hit
    assert result.validated and result.ladder_rung == 0
    for name in ("service.requests", "service.publishes", "manager.misses",
                 "supervisor.rewrites", "supervisor.validations"):
        assert metrics.value(name) > 0, name


def test_queue_depth_gauge_tracks_pending(machine):
    svc = RewriteService(machine)
    svc.request(_poly_conf(), "poly", 0, 3)
    svc.request(_poly_conf(), "poly", 0, 4)
    assert svc.metrics.value("service.queue_depth") == 2
    svc.step()
    svc.step()
    assert svc.metrics.value("service.queue_depth") == 0


def test_rejects_unknown_mode(machine):
    with pytest.raises(ValueError):
        RewriteService(machine, mode="fibers")

    svc = RewriteService(machine, mode="thread")
    with pytest.raises(RuntimeError):
        svc.step()
    svc.close()


# ------------------------------------------------- satellite regressions
def test_inflight_released_when_the_worker_crashes(machine):
    """A crashing manager/rewrite_fn must not pin the key in _inflight:
    every later request would coalesce against a rewrite that will
    never land (the cold path would be stuck on the original forever)."""
    svc = RewriteService(machine)
    original = machine.image.resolve("poly")
    assert svc.request(_poly_conf(), "poly", 0, 3) == original

    real_get = svc.manager.get

    def crashing_get(conf, fn, *args):
        raise RuntimeError("injected worker crash")

    svc.manager.get = crashing_get
    with pytest.raises(RuntimeError):
        svc.step()
    svc.manager.get = real_get

    # the key is free again: the re-request queues (does NOT coalesce)
    assert svc.request(_poly_conf(), "poly", 0, 3) == original
    assert svc.pending() == 1
    assert svc.stats()["coalesced"] == 0
    svc.drain()
    assert svc.request(_poly_conf(), "poly", 0, 3) != original


def test_thread_mode_prunes_completed_futures(machine):
    """The futures list must stay bounded between drains — one live
    entry per in-flight rewrite, not one per request ever made."""
    svc = RewriteService(machine, mode="thread", max_workers=1)
    try:
        import time

        for k in range(3, 9):
            svc.request(_poly_conf(), "poly", 0, k)
            deadline = time.monotonic() + 10
            while svc.pending() and time.monotonic() < deadline:
                time.sleep(0.005)
        # every submitted future completed; the next request compacts
        svc.request(_poly_conf(), "poly", 0, 99)
        assert len(svc._futures) == 1, "completed futures must be pruned"
    finally:
        svc.close()


def test_thread_mode_keeps_crashed_futures_for_drain(machine):
    """Pruning must not swallow worker crashes: a completed-but-failed
    future stays queued so drain() still propagates the exception."""
    svc = RewriteService(machine, mode="thread", max_workers=1)
    try:
        import time

        real_get = svc.manager.get

        def crashing_get(conf, fn, *args):
            raise RuntimeError("injected worker crash")

        svc.manager.get = crashing_get
        svc.request(_poly_conf(), "poly", 0, 3)
        deadline = time.monotonic() + 10
        while svc.pending() and time.monotonic() < deadline:
            time.sleep(0.005)
        svc.manager.get = real_get
        svc.request(_poly_conf(), "poly", 0, 4)  # triggers compaction
        assert len(svc._futures) == 2, "the crashed future must survive"
        with pytest.raises(RuntimeError):
            svc.drain()
    finally:
        svc._futures.clear()
        svc.close()


def test_invalidation_racing_a_rewrite_never_publishes_stale(machine):
    """Deterministic interleaving of the publish/withdraw race: the
    cache entry is invalidated after the rewrite completes but before
    the worker publishes.  The worker must notice (the manager no
    longer holds the key) and drop the publication."""
    svc = RewriteService(machine)
    cfg = machine.image.malloc(16)
    machine.memory.write_u64(cfg, 2)
    machine.memory.write_u64(cfg + 8, 10)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    original = machine.image.resolve("apply_cfg")
    svc.request(conf, "apply_cfg", 0, cfg)

    real_get = svc.manager.get

    def racy_get(got_conf, fn, *args):
        result = real_get(got_conf, fn, *args)
        # the descriptor mutates in the window between rewrite
        # completion and publication
        machine.memory.write_u64(cfg, 7)
        assert svc.manager.invalidate_memory(cfg, cfg + 8) == 1
        return result

    svc.manager.get = racy_get
    svc.step()
    svc.manager.get = real_get

    assert svc.metrics.value("service.publish_races") == 1
    assert svc.stats()["publishes"] == 0
    assert len(svc.table) == 0, "no stale entry may be reachable"
    # the caller keeps the original and the next cycle specializes fresh
    assert svc.request(conf, "apply_cfg", 0, cfg) == original
    svc.drain()
    fresh = svc.request(conf, "apply_cfg", 0, cfg)
    assert machine.call(fresh, 5, cfg).int_return == 45


def test_threaded_publish_withdraw_stress_never_leaves_stale_entries(machine):
    """Threaded stress of the same race: workers publish while the main
    thread invalidates.  Invariant after every round: any published key
    is backed by a live manager cache entry."""
    svc = RewriteService(machine, mode="thread", max_workers=2)
    cfg = machine.image.malloc(16)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    try:
        for round_no in range(12):
            machine.memory.write_u64(cfg, 2 + round_no)
            machine.memory.write_u64(cfg + 8, 10)
            svc.request(conf.copy(), "apply_cfg", 0, cfg)
            # invalidate from the main thread while the worker rewrites
            machine.memory.write_u64(cfg, 99 + round_no)
            svc.manager.invalidate_memory(cfg, cfg + 8)
            svc.drain()
            with svc.lock:
                stale = [
                    key for key in svc.table._table
                    if svc._alias_owner.get(key, key) not in svc.manager
                ]
            assert not stale, f"stale published keys after round {round_no}"
    finally:
        svc.close()


# ------------------------------------------------------ shutdown contract
def test_close_is_idempotent_and_detaches_the_listener(machine):
    svc = RewriteService(machine)
    svc.request(_poly_conf(), "poly", 0, 3)
    assert svc._on_invalidation in svc.manager._listeners
    svc.close()
    svc.close()  # idempotent: the second call is a no-op, not an error
    assert svc._on_invalidation not in svc.manager._listeners
    assert svc.pending() == 0, "close drains queued work first"


def test_context_manager_closes_and_drains(machine):
    original = machine.image.resolve("poly")
    with RewriteService(machine) as svc:
        assert svc.request(_poly_conf(), "poly", 0, 3) == original
    assert svc._closed
    # close() drained: the rewrite landed before shutdown
    assert svc.stats()["publishes"] == 1


def test_thread_mode_close_leaks_no_worker_threads(machine):
    import threading

    baseline = threading.active_count()
    with RewriteService(machine, mode="thread", max_workers=3) as svc:
        for k in (3, 4, 5):
            svc.request(_poly_conf(), "poly", 0, k)
    assert svc._executor is None, "the executor must be shut down"
    assert threading.active_count() == baseline, "worker threads leaked"
    assert svc.stats()["publishes"] == 3


def test_closed_service_does_not_hear_manager_invalidations(machine):
    """A shared manager outliving the service must not fire withdrawals
    into the dead service's dispatch table."""
    svc = RewriteService(machine)
    cfg = machine.image.malloc(16)
    machine.memory.write_u64(cfg, 2)
    machine.memory.write_u64(cfg + 8, 10)
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    svc.request(conf, "apply_cfg", 0, cfg)
    svc.drain()
    published = len(svc.table)
    assert published >= 1
    svc.close()
    machine.memory.write_u64(cfg, 7)
    assert svc.manager.invalidate_memory(cfg, cfg + 8) == 1
    assert svc.stats()["withdrawn"] == 0, "a closed service hears nothing"
    assert len(svc.table) == published


# ------------------------------------------------------------ thread mode
def test_thread_mode_publishes_after_drain(machine):
    svc = RewriteService(machine, mode="thread", max_workers=2)
    try:
        original = machine.image.resolve("poly")
        entries = [svc.request(_poly_conf(), "poly", 0, k) for k in (3, 4, 5)]
        assert all(e == original for e in entries)
        svc.drain()
        for k in (3, 4, 5):
            warm = svc.request(_poly_conf(), "poly", 0, k)
            assert warm != original
            assert machine.call(warm, 5, k).int_return == 5 * k + k
        assert svc.stats()["publishes"] == 3
    finally:
        svc.close()
