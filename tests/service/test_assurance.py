"""Continuous assurance at the service level: the shadowed `call` path,
probation after snapshot restore, admission control and the watchdog."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN
from repro.core.manager import SpecializationManager
from repro.machine.vm import Machine
from repro.obs import Metrics
from repro.service import RewriteService
from repro.testing import FaultInjector

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
noinline long poly_evil(long x, long k) { return x * k + k + 1; }
noinline long mix(long x, long k) { return x * x + k; }
"""


class _TickClock:
    """Deterministic monotonic clock (advances per reading)."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture()
def machine() -> Machine:
    m = Machine()
    m.load(SOURCE)
    return m


def _conf(**overrides):
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    for name, value in overrides.items():
        setattr(conf, name, value)
    return conf


def _assured(machine, **options) -> RewriteService:
    clock = _TickClock()
    manager = SpecializationManager(
        machine, clock=clock, backoff_seconds=0.016, max_backoff_seconds=0.256
    )
    svc = RewriteService(
        machine, manager=manager, shadow_interval=1, **options
    )
    svc.clock = clock
    return svc


def _warm(svc, k=3):
    svc.request(_conf(), "poly", 0, k)
    svc.drain()
    return svc.manager.key_for("poly", _conf(), (0, k))


# --------------------------------------------------------- shadowed call
def test_sampled_match_serves_the_variant(machine):
    svc = _assured(machine)
    key = _warm(svc)
    run = svc.call(_conf(), "poly", 5, 3)
    assert run.int_return == 18
    assert svc.stats()["shadow_samples"] == 1
    assert key in svc.table, "a matching variant stays published"


def test_divergence_withdraws_quarantines_and_records_a_repro(machine):
    svc = _assured(machine)
    key = _warm(svc)
    # the miscompile: the published body silently starts lying
    svc.table.publish(key, machine.image.resolve("poly_evil"))
    run = svc.call(_conf(), "poly", 5, 3)
    # the sampled call never delivers the wrong answer
    assert run.int_return == 18
    assert key not in svc.table, "the lying variant is withdrawn"
    assert svc.manager.stats()["quarantined"] == 1
    assert svc.stats()["shadow_divergences"] == 1
    (repro,) = svc.divergences
    assert repro.failure.reason == "shadow-divergence"
    assert repro.args == (5, 3)
    assert "int return diverged" in repro.description
    # post-withdrawal calls run the original — still correct
    assert svc.call(_conf(), "poly", 6, 3).int_return == 21


def test_requalified_key_republishes_on_probation(machine):
    svc = _assured(machine)
    key = _warm(svc)
    svc.table.publish(key, machine.image.resolve("poly_evil"))
    svc.call(_conf(), "poly", 5, 3)  # divergence: withdrawn + quarantined
    svc.clock.now += 1.0  # backoff expires
    svc.request(_conf(), "poly", 0, 3)
    svc.drain()
    assert key in svc.table and svc.table.on_probation(key), (
        "a key withdrawn for divergence must re-enter on probation"
    )
    assert svc.call(_conf(), "poly", 5, 3).int_return == 18
    assert not svc.table.on_probation(key), "the matching call re-admits it"


def test_unsampled_calls_run_the_published_entry(machine):
    svc = RewriteService(machine, shadow_interval=1000, shadow_seed=7)
    _warm(svc)
    runs = [svc.call(_conf(), "poly", x, 3).int_return for x in range(5)]
    assert runs == [3 * x + 3 for x in range(5)]
    assert svc.stats()["shadow_samples"] <= 1


def test_call_without_shadow_sampler_still_works(machine):
    svc = RewriteService(machine)
    assert svc.call(_conf(), "poly", 5, 3).int_return == 18  # cold
    svc.drain()
    assert svc.call(_conf(), "poly", 5, 3).int_return == 18  # warm


def test_shadow_fault_class_end_to_end(machine):
    """`shadow` injection: a correct variant is observed lying once —
    the service must withdraw it exactly as for an organic miscompile."""
    svc = _assured(machine)
    key = _warm(svc)
    with FaultInjector("shadow") as fault:
        run = svc.call(_conf(), "poly", 5, 3)
    assert fault.fired
    assert run.int_return == 18
    assert key not in svc.table
    assert svc.manager.stats()["quarantined"] == 1


# ----------------------------------------------------------- persistence
def test_restore_publishes_on_probation_and_revalidates(machine, tmp_path):
    svc = _assured(machine)
    key = _warm(svc)
    path = tmp_path / "spec.snap"
    svc.save_snapshot(path)

    fresh = Machine()
    fresh.load(SOURCE)
    svc2 = _assured(fresh)
    report = svc2.restore_snapshot(path)
    assert report.restored == 1 and not report.rejected
    assert key in svc2.table and svc2.table.on_probation(key)
    assert svc2.stats()["restored_publishes"] == 1
    # first call shadow-validates and admits
    assert svc2.call(_conf(), "poly", 5, 3).int_return == 18
    assert not svc2.table.on_probation(key)
    assert svc2.stats()["probation_admits"] == 1
    # and it is a warm hit, not a re-rewrite
    assert svc2.stats()["publishes"] == 0


def test_restore_rejects_corrupt_record_and_cold_starts_that_key(
    machine, tmp_path
):
    svc = _assured(machine)
    _warm(svc, k=3)
    _warm(svc, k=5)
    path = tmp_path / "spec.snap"
    with FaultInjector("snapshot", nth=2):  # bit-rot the first entry
        svc.save_snapshot(path)

    fresh = Machine()
    fresh.load(SOURCE)
    svc2 = _assured(fresh)
    report = svc2.restore_snapshot(path)
    assert len(report.rejected) == 1
    assert report.rejected[0].reason == "snapshot-corrupt"
    assert report.restored == 1
    # both keys still produce correct answers: one restored+validated,
    # one cold-missed back through the rewrite queue
    for k in (3, 5):
        assert svc2.call(_conf(), "poly", 5, k).int_return == 5 * k + k
        svc2.drain()


# ----------------------------------------------------- admission control
def test_bounded_queue_sheds_deterministically(machine):
    svc = RewriteService(machine, max_queue_depth=1)
    original = machine.image.resolve("poly")
    entries = [svc.request(_conf(), "poly", 0, k) for k in (3, 4, 5)]
    assert entries == [original] * 3, "shed callers keep the original"
    assert svc.pending() == 1
    assert svc.stats()["shed"] == 2
    assert len(svc.shed_log) == 2
    assert all("service-shed" in message for _, message in svc.shed_log)
    svc.drain()
    # pressure gone: the same keys admit again
    svc.request(_conf(), "poly", 0, 4)
    assert svc.pending() == 1


def test_retry_budget_exhaustion_sheds(machine):
    svc = _assured(machine, retry_budget=1)
    doomed = _conf(max_output_instructions=1)
    svc.request(doomed, "poly", 0, 3)
    svc.drain()  # failure #1 consumes the budget
    assert svc.stats()["failures"] == 1
    svc.clock.now += 1.0  # quarantine backoff expires
    svc.request(doomed, "poly", 0, 3)
    assert svc.pending() == 0, "over-budget key must not re-enter the queue"
    assert svc.stats()["shed"] == 1
    assert "retry budget" in svc.shed_log[-1][1]


def test_watchdog_aborts_stuck_rewrites_into_the_ladder(machine):
    svc = RewriteService(machine, watchdog_max_trace_steps=3)
    original = machine.image.resolve("mix")
    assert svc.request(_conf(), "mix", 0, 9) == original
    svc.drain()
    assert svc.stats()["failures"] == 1 and svc.stats()["publishes"] == 0
    cached = svc.manager.cached_result(
        svc.manager.key_for("mix", _conf(), (0, 9))
    )
    assert cached is not None and cached.reason == "trace-limit"
    # the caller keeps the original; nothing wedged
    assert machine.call(svc.request(_conf(), "mix", 0, 9), 5, 9
                        ).int_return == 34


def test_shed_fault_class_forces_a_shed(machine):
    svc = RewriteService(machine)
    original = machine.image.resolve("poly")
    with FaultInjector("shed") as fault:
        entry = svc.request(_conf(), "poly", 0, 3)
    assert fault.fired
    assert entry == original and svc.pending() == 0
    assert svc.stats()["shed"] == 1
    # the next, uninjected request admits normally
    svc.request(_conf(), "poly", 0, 3)
    assert svc.pending() == 1
