"""Step-mode determinism: a seeded service workload is bit-for-bit
reproducible — same published entries, same emitted code bytes, same
metrics snapshot — across two independent runs.

The workload interleaves requests (varying functions, known arguments
and descriptor state), queue steps, descriptor mutations and explicit
invalidations under one ``random.Random(seed)`` schedule.  Nothing in
the pipeline may consult a clock, an unordered container or object
identity in a way that leaks into the outputs.
"""

from __future__ import annotations

import random

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN, BREW_PTR_TO_KNOWN
from repro.machine.vm import Machine
from repro.service import RewriteService

SOURCE = """
struct Cfg { long scale; long bias; };
noinline long apply_cfg(long x, struct Cfg *c) { return x * c->scale + c->bias; }
noinline long poly(long x, long k) { return x * k + k; }
noinline long mix(long a, long b, long c) { return a * b ^ c; }
"""

STEPS = 120


def _poly_conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    return conf


def _mix_conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    brew_setpar(conf, 3, BREW_KNOWN)
    return conf


def _cfg_conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_PTR_TO_KNOWN)
    return conf


def run_workload(seed: int) -> dict:
    """One full seeded service session, reduced to comparable artifacts."""
    m = Machine()
    m.load(SOURCE)
    svc = RewriteService(m)  # step mode, private manager + metrics
    cfg = m.image.malloc(16)
    m.memory.write_u64(cfg, 2)
    m.memory.write_u64(cfg + 8, 10)

    rng = random.Random(seed)
    entries: list[int] = []
    for _ in range(STEPS):
        roll = rng.random()
        if roll < 0.35:
            entries.append(
                svc.request(_poly_conf(), "poly", rng.randrange(100), rng.randrange(2, 6))
            )
        elif roll < 0.55:
            entries.append(svc.request(
                _mix_conf(), "mix",
                rng.randrange(100), rng.randrange(2, 5), rng.randrange(3),
            ))
        elif roll < 0.75:
            entries.append(svc.request(_cfg_conf(), "apply_cfg", 0, cfg))
        elif roll < 0.90:
            svc.step(limit=rng.randrange(1, 3))
        else:
            m.memory.write_u64(cfg, rng.randrange(2, 9))
            svc.manager.invalidate_memory(cfg, cfg + 8)
    svc.drain()

    published = sorted(
        e for e in svc.table.entries() if e in m.image.function_sizes
    )
    code = {
        hex(e): m.image.peek(e, m.image.function_sizes[e]).hex()
        for e in published
    }
    return {
        "entries": entries,
        "code": code,
        "snapshot": svc.metrics.snapshot_json(),
        "service_stats": svc.stats(),
        "manager_stats": svc.manager.stats(),
    }


def test_seeded_workload_is_bit_for_bit_reproducible():
    a = run_workload(seed=42)
    b = run_workload(seed=42)
    assert a["entries"] == b["entries"]
    assert a["code"] == b["code"]
    assert a["snapshot"] == b["snapshot"], "metrics snapshot must be byte-identical"
    assert a["service_stats"] == b["service_stats"]
    assert a["manager_stats"] == b["manager_stats"]


def test_different_seeds_still_converge_on_correctness():
    """Whatever the schedule, every published entry computes what the
    original computes (a light differential sweep over the session)."""
    for seed in (1, 7):
        m = Machine()
        m.load(SOURCE)
        svc = RewriteService(m)
        rng = random.Random(seed)
        for _ in range(30):
            k = rng.randrange(2, 6)
            svc.request(_poly_conf(), "poly", 0, k)
            svc.step()
        for k in range(2, 6):
            entry = svc.request(_poly_conf(), "poly", 0, k)
            svc.drain()
            entry = svc.request(_poly_conf(), "poly", 0, k)
            for x in (0, 5, -3):
                want = m.call("poly", x, k).int_return
                assert m.call(entry, x, k).int_return == want


def test_workload_actually_exercised_the_cache():
    run = run_workload(seed=42)
    stats = run["service_stats"]
    assert stats["publishes"] > 0
    assert stats["warm_hits"] > 0
    assert stats["cold_misses"] > 0
    assert run["manager_stats"]["evictions"] > 0, "invalidations must bite"
    assert run["code"], "no published code captured"
