"""RewriteFabric behaviour: deterministic routing, bulkhead isolation,
per-tenant admission and weighted-fair dequeue, heartbeat watchdog,
crash/stall/partition failover, and the fabric fault-injection seams."""

from __future__ import annotations

import pytest

from repro.core import brew_init_conf, brew_setpar, BREW_KNOWN
from repro.service import (
    RewriteFabric, SHARD_DEAD, SHARD_HEALTHY, SHARD_SUSPECT,
)
from repro.testing import EXPECTED_REASON, FaultInjector

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
noinline long mix(long x, long k) { return x * x + k; }
"""


def _conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    return conf


def _keys_owned_by(fabric: RewriteFabric, index: int, count: int,
                   fn: str = "poly", start: int = 3) -> list[int]:
    """The first ``count`` known-arg values whose routing key lands on
    shard ``index`` (rendezvous hashing is deterministic, so this is a
    pure function of the fabric's seed)."""
    ks, k = [], start
    while len(ks) < count:
        digest = fabric.route_digest(_conf(), fn, (0, k))
        if fabric._owner_for(digest).index == index:
            ks.append(k)
        k += 1
    return ks


# -------------------------------------------------------------- routing
def test_routing_is_deterministic_and_spreads_keys():
    with RewriteFabric(SOURCE, shards=3, seed=11) as a, \
         RewriteFabric(SOURCE, shards=3, seed=11) as b:
        owners_a, owners_b = [], []
        for k in range(3, 40):
            digest = a.route_digest(_conf(), "poly", (0, k))
            assert digest == b.route_digest(_conf(), "poly", (0, k))
            owners_a.append(a._owner_for(digest).index)
            owners_b.append(b._owner_for(digest).index)
        assert owners_a == owners_b, "same seed must route identically"
        assert len(set(owners_a)) == 3, "keys must spread across shards"


def test_digest_ignores_unknown_args_and_keys_on_known_ones():
    with RewriteFabric(SOURCE, shards=2, seed=1) as fabric:
        conf = _conf()
        # param 2 is the known one: x is irrelevant, k is the key
        d1 = fabric.route_digest(conf, "poly", (0, 3))
        d2 = fabric.route_digest(conf, "poly", (999, 3))
        d3 = fabric.route_digest(conf, "poly", (0, 4))
        assert d1 == d2 and d1 != d3


# ------------------------------------------------------ request lifecycle
def test_cold_then_warm_and_both_paths_execute_correctly():
    with RewriteFabric(SOURCE, shards=3, seed=5) as fabric:
        cold = fabric.call("alice", _conf(), "poly", 5, 3)
        assert cold.outcome == "cold" and cold.entry == cold.original
        assert cold.run.int_return == 5 * 3 + 3
        fabric.pump()
        warm = fabric.call("alice", _conf(), "poly", 7, 3)
        assert warm.outcome == "warm" and warm.entry != warm.original
        assert warm.run.int_return == 7 * 3 + 3
        assert warm.shard == cold.shard, "the key's owner must not move"
        assert fabric.metrics.value("fabric.published") == 1


def test_duplicate_requests_coalesce_at_the_fabric_queue():
    with RewriteFabric(SOURCE, shards=2, seed=5) as fabric:
        first = fabric.request("alice", _conf(), "poly", 0, 3)
        second = fabric.request("bob", _conf(), "poly", 9, 3)
        assert first.outcome == "cold"
        assert second.outcome == "coalesced"
        assert fabric.shards[first.shard].queue_depth() == 1


def test_bulkheads_share_nothing():
    with RewriteFabric(SOURCE, shards=3, seed=5) as fabric:
        route = fabric.request("alice", _conf(), "poly", 0, 3)
        fabric.pump()
        owner = fabric.shards[route.shard]
        assert len(owner.service.table) == 1
        for shard in fabric.shards:
            if shard.index != owner.index:
                assert len(shard.service.table) == 0
                assert shard.manager is not owner.manager
                assert shard.machine is not owner.machine
                assert shard.metrics is not owner.metrics


# ------------------------------------------------------------- admission
def test_tenant_quota_sheds_only_the_flooder():
    with RewriteFabric(SOURCE, shards=3, seed=7, default_quota=2) as fabric:
        ks = _keys_owned_by(fabric, 0, 4)
        outcomes = [
            fabric.request("mallory", _conf(), "poly", 0, k).outcome
            for k in ks
        ]
        assert outcomes == ["cold", "cold", "shed", "shed"]
        shed = fabric.request("mallory", _conf(), "poly", 0, ks[3])
        assert shed.reason == "tenant-quota-exceeded"
        assert shed.entry == shed.original, "a shed caller keeps the original"
        # another tenant still gets a queue slot on the same shard
        alice_k = _keys_owned_by(fabric, 0, 5)[4]
        assert fabric.request("alice", _conf(), "poly", 0, alice_k).outcome == "cold"
        assert fabric.metrics.value("fabric.tenant.mallory.shed") == 3
        assert fabric.metrics.value("fabric.tenant.alice.shed") == 0


def test_weighted_fair_dequeue_respects_weights():
    with RewriteFabric(
        SOURCE, shards=2, seed=3, default_quota=8,
        weights={"heavy": 3}, work_per_tick=4,
    ) as fabric:
        heavy_ks = _keys_owned_by(fabric, 0, 3, fn="poly")
        light_ks = _keys_owned_by(fabric, 0, 3, fn="mix")
        for k in heavy_ks:
            fabric.request("heavy", _conf(), "poly", 0, k)
        for k in light_ks:
            fabric.request("light", _conf(), "mix", 0, k)
        shard = fabric.shards[0]
        assert shard.queue_depth("heavy") == 3 and shard.queue_depth("light") == 3
        fabric.pump()
        # budget 4, rotation starts at "heavy" on the first tick:
        # heavy takes its weight (3), light takes 1
        assert shard.queue_depth("heavy") == 0
        assert shard.queue_depth("light") == 2


# ---------------------------------------------------------------- health
def test_stall_walks_suspect_then_dead_with_degraded_requests():
    with RewriteFabric(
        SOURCE, shards=3, seed=9, suspect_after=2.0, dead_after=4.0,
    ) as fabric:
        k = _keys_owned_by(fabric, 1, 1)[0]
        fabric.pump()  # everyone beats once
        fabric.stall_shard(1)
        fabric.pump(2)
        assert fabric.shards[1].state == SHARD_SUSPECT
        route = fabric.call("alice", _conf(), "poly", 5, k)
        assert route.outcome == "degraded" and route.reason == "shard-stalled"
        assert route.run.int_return == 5 * k + k, "degraded is still correct"
        fabric.pump(2)
        assert fabric.shards[1].state == SHARD_DEAD
        assert fabric.failover_log[-1][0] == 1
        # the dead shard's keys re-route to a live successor
        after = fabric.request("alice", _conf(), "poly", 0, k)
        assert after.shard != 1 and after.outcome in ("cold", "warm")


def test_stalled_shard_that_resumes_beating_recovers():
    with RewriteFabric(
        SOURCE, shards=2, seed=9, suspect_after=2.0, dead_after=6.0,
    ) as fabric:
        fabric.pump()
        fabric.stall_shard(0)
        fabric.pump(2)
        assert fabric.shards[0].state == SHARD_SUSPECT
        fabric.unstall_shard(0)
        fabric.pump()
        assert fabric.shards[0].state == SHARD_HEALTHY
        assert fabric.metrics.value("fabric.recovered") == 1


def test_crash_failover_warm_starts_the_successor(tmp_path):
    with RewriteFabric(
        SOURCE, shards=3, seed=5, snapshot_dir=tmp_path,
        checkpoint_interval=1,
    ) as fabric:
        k = _keys_owned_by(fabric, 2, 1)[0]
        fabric.request("alice", _conf(), "poly", 0, k)
        fabric.pump()  # performs the rewrite and checkpoints every shard
        fabric.crash_shard(2)
        assert fabric.shards[2].state == SHARD_DEAD
        assert fabric.live_shards() == [0, 1]
        assert fabric.failover_log == [(2, "crash: operator kill", "shard-dead")]
        assert fabric.metrics.value("fabric.warm_starts") == 1
        assert fabric.metrics.value("fabric.warm_start_restored") >= 1
        # the key is served by a live shard, still correctly
        route = fabric.call("alice", _conf(), "poly", 6, k)
        assert route.shard != 2 and route.outcome in ("warm", "cold")
        assert route.run.int_return == 6 * k + k


def test_all_shards_dead_is_an_outage_not_an_exception():
    with RewriteFabric(SOURCE, shards=2, seed=5) as fabric:
        fabric.crash_shard(0)
        fabric.crash_shard(1)
        route = fabric.call("alice", _conf(), "poly", 4, 3)
        assert route.outcome == "degraded" and route.reason == "shard-dead"
        assert route.shard == -1
        assert route.run.int_return == 4 * 3 + 3


def test_partition_degrades_then_heals_through_the_breaker():
    with RewriteFabric(SOURCE, shards=2, seed=5) as fabric:
        k = _keys_owned_by(fabric, 1, 1)[0]
        fabric.partition_shard(1, attempts=64)
        route = fabric.request("alice", _conf(), "poly", 0, k)
        assert route.outcome == "degraded" and route.reason == "link-partition"
        assert fabric.metrics.value("fabric.link_failures") == 1
        fabric.heal_shard(1)
        fabric.pump(3)  # epochs pass; the breaker half-opens
        healed = fabric.request("alice", _conf(), "poly", 0, k)
        assert healed.outcome == "cold"


# ------------------------------------------------------- injection seams
def test_injected_shard_crash_is_contained_and_fails_over():
    with RewriteFabric(SOURCE, shards=3, seed=7) as fabric:
        route = fabric.request("alice", _conf(), "poly", 0, 3)
        with FaultInjector("shard-crash", nth=1) as fault:
            fabric.pump()
        assert fault.fired
        assert fabric.shards[route.shard].state == SHARD_DEAD
        assert fabric.failover_log[-1][2] == EXPECTED_REASON["shard-crash"]
        assert fabric.metrics.value("fabric.crashes") == 1
        # the crash never escaped and the key is servable elsewhere
        after = fabric.call("alice", _conf(), "poly", 5, 3)
        assert after.run.int_return == 5 * 3 + 3


def test_injected_shard_stall_surfaces_the_documented_reason():
    with RewriteFabric(
        SOURCE, shards=2, seed=7, suspect_after=2.0, dead_after=9.0,
    ) as fabric:
        k = _keys_owned_by(fabric, 0, 1)[0]
        with FaultInjector("shard-stall", nth=1) as fault:
            fabric.pump(3)  # shard 0's first beat is swallowed, latched
            assert fault.fired
            assert fabric.shards[0].state == SHARD_SUSPECT
            route = fabric.request("alice", _conf(), "poly", 0, k)
        assert route.outcome == "degraded"
        assert route.reason == EXPECTED_REASON["shard-stall"]


def test_injected_tenant_flood_sheds_with_the_documented_reason():
    with RewriteFabric(SOURCE, shards=2, seed=7) as fabric:
        with FaultInjector("tenant-flood", nth=1) as fault:
            route = fabric.request("alice", _conf(), "poly", 0, 3)
        assert fault.fired
        assert route.outcome == "shed"
        assert route.reason == EXPECTED_REASON["tenant-flood"]
        # the seam is gone and quota state was untouched: re-request queues
        assert fabric.request("alice", _conf(), "poly", 0, 3).outcome == "cold"


# --------------------------------------------------------- observability
def test_metrics_snapshot_namespaces_each_shard_deterministically():
    with RewriteFabric(SOURCE, shards=2, seed=5) as fabric:
        for k in range(3, 11):  # enough keys that both shards see work
            fabric.request("alice", _conf(), "poly", 0, k)
        fabric.pump(4)
        snap = fabric.metrics_snapshot()
        assert snap.value("fabric.requests") == 8
        merged = snap.as_dict()["counters"]
        assert any(n.startswith("fabric.shard0.") for n in merged)
        assert any(n.startswith("fabric.shard1.") for n in merged)
        assert snap.snapshot_json() == fabric.metrics_snapshot().snapshot_json()


def test_fabric_close_is_idempotent():
    fabric = RewriteFabric(SOURCE, shards=2, seed=5)
    fabric.request("alice", _conf(), "poly", 0, 3)
    fabric.pump()
    fabric.close()
    fabric.close()
    for shard in fabric.shards:
        assert shard.service._closed


def test_rejects_zero_shards():
    with pytest.raises(ValueError):
        RewriteFabric(SOURCE, shards=0)


def test_closed_fabric_is_deaf_and_degrades_callers():
    fabric = RewriteFabric(SOURCE, shards=2, seed=5)
    fabric.request("alice", _conf(), "poly", 0, 3)
    fabric.pump()
    fabric.close()
    route = fabric.request("alice", _conf(), "poly", 0, 3)
    assert route.outcome == "degraded"
    assert route.reason == "shard-dead"
    assert route.entry == route.original, "at worst the original"
    assert fabric.pump(5) == 0, "a closed fabric never ticks"
    assert fabric.metrics.value("fabric.closed_requests") == 1


def test_close_detaches_every_shard_listener():
    """No leak: after close, no shard service remains registered on its
    manager, so a manager that keeps living cannot fire into a dead
    dispatch table."""
    fabric = RewriteFabric(SOURCE, shards=3, seed=5)
    fabric.request("alice", _conf(), "poly", 0, 3)
    fabric.pump(2)
    fabric.close()
    for shard in fabric.shards:
        service = shard.service
        assert service._closed
        assert service._on_invalidation not in service.manager._listeners


def test_context_manager_close_parity_with_service():
    """`with RewriteFabric(...)` closes exactly like an explicit
    close(): idempotent, deaf afterwards, shards all shut down."""
    with RewriteFabric(SOURCE, shards=2, seed=5) as fabric:
        assert fabric.request("alice", _conf(), "poly", 0, 3).outcome == "cold"
    assert all(s.service._closed for s in fabric.shards)
    fabric.close()  # second close after __exit__ is a no-op
    assert fabric.request("alice", _conf(), "poly", 0, 3).outcome == "degraded"
