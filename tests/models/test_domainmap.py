"""Domain-map runtime tests (EXP-7): transparent respecialization."""

from __future__ import annotations

import math

import pytest

from repro.models.domainmap import BLOCK, CYCLIC, DomainMapRuntime


@pytest.fixture()
def rt() -> DomainMapRuntime:
    return DomainMapRuntime(nelems=64, nnodes=4)


def test_generic_sum_matches_reference(rt):
    result = rt.sum()
    assert math.isclose(result.float_return, rt.reference_sum(rt.nelems), rel_tol=1e-12)


def test_respecialize_keeps_answers_and_gets_faster(rt):
    generic = rt.sum()
    r = rt.respecialize()
    assert r.ok, r.message
    specialized = rt.sum()
    assert math.isclose(specialized.float_return, generic.float_return, rel_tol=1e-12)
    assert specialized.cycles < generic.cycles


def test_redistribution_is_transparent(rt):
    r = rt.respecialize()
    assert r.ok
    before = rt.sum()
    rt.redistribute(CYCLIC)
    after = rt.sum()
    # same logical content, same answer, new specialized accessor
    assert math.isclose(after.float_return, before.float_return, rel_tol=1e-12)
    assert rt.respecialize_count == 2
    assert rt.specialized is not None and rt.specialized.ok
    rt.redistribute(BLOCK)
    again = rt.sum()
    assert math.isclose(again.float_return, before.float_return, rel_tol=1e-12)


def test_cyclic_vs_block_specializations_differ(rt):
    r_block = rt.respecialize()
    rt.redistribute(CYCLIC)
    r_cyclic = rt.specialized
    assert r_block.entry != r_cyclic.entry
    # block accessor divides by block; cyclic divides by nnodes — both
    # branches of dm_read folded to their own straight path
    from repro.isa.encoding import iter_decode
    from repro.isa.opcodes import OpClass, op_info

    for r in (r_block, r_cyclic):
        code = rt.machine.image.peek(r.entry, r.code_size)
        ops = [i.op for i in iter_decode(code, r.entry)]
        assert not any(op_info(op).opclass is OpClass.JCC for op in ops)


def test_failed_respecialization_falls_back_to_generic(rt):
    # sabotage: make the budget impossible, the slot must still work
    from repro.core import brew_init_conf, brew_setpar, BREW_PTR_TO_KNOWN, brew_rewrite

    conf = brew_init_conf()
    brew_setpar(conf, 1, BREW_PTR_TO_KNOWN)
    conf.max_output_instructions = 1
    result = brew_rewrite(rt.machine, conf, "dm_read", rt.dm_addr, 0)
    assert not result.ok
    rt._install(result.entry_or_original)
    out = rt.sum()
    assert math.isclose(out.float_return, rt.reference_sum(rt.nelems), rel_tol=1e-12)
