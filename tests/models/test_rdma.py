"""Section VIII outlook tests: detect / preload / redirect."""

from __future__ import annotations

import math

import pytest

from repro.models.pgas import PgasLab
from repro.models.rdma import RdmaPrefetcher


@pytest.fixture(scope="module")
def setup():
    lab = PgasLab(nelems=256, nnodes=4, remote_cost=200)
    return lab, RdmaPrefetcher(lab)


def test_detection_finds_exactly_the_touched_windows(setup):
    lab, pre = setup
    block = lab.block
    lo, hi = block, block + 16  # entirely on node 1
    plan = pre.detect(lo, hi)
    assert plan.total_bytes == 16 * 8
    for i in range(lo, hi):
        assert plan.covers(lab.element_address(i))
    # node 2's window untouched
    assert not plan.covers(lab.element_address(2 * block))


def test_prefetched_run_is_remote_free_and_correct(setup):
    lab, pre = setup
    block = lab.block
    lo, hi = block, 2 * block  # node 1's whole slice
    naive = pre.run_naive(lo, hi)
    run, cost = pre.run_prefetched(lo, hi)
    assert math.isclose(run.float_return, naive.float_return, rel_tol=1e-12)
    assert run.perf.remote_accesses == 0
    assert naive.perf.remote_accesses == hi - lo


def test_prefetch_beats_naive_on_large_remote_ranges(setup):
    lab, pre = setup
    block = lab.block
    lo, hi = block, 4 * block  # three remote slices
    naive = pre.run_naive(lo, hi)
    run, cost = pre.run_prefetched(lo, hi)
    assert run.cycles + cost < naive.cycles


def test_redirect_kernel_reused_across_runs(setup):
    lab, pre = setup
    k1 = pre.redirect_kernel()
    k2 = pre.redirect_kernel()
    assert k1 == k2
