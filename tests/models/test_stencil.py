"""Stencil library tests: correctness of every variant against a pure
Python oracle, and the Section V relationships between their costs."""

from __future__ import annotations

import math

import pytest

from repro.models.stencil import StencilLab, StencilSpec

XS = YS = 16
ITERS = 2


@pytest.fixture(scope="module")
def lab() -> StencilLab:
    return StencilLab(xs=XS, ys=YS)


def expected_after(lab: StencilLab, iters: int) -> list[float]:
    lab.reset_matrices()
    grid = lab.read_matrix(lab.m1)
    for _ in range(iters):
        grid = lab.reference_sweep(grid)
    return grid


def assert_matches_oracle(lab: StencilLab, iters: int):
    got = lab.read_matrix(lab.final_matrix)  # before reset_matrices below
    expected = expected_after(lab, iters)
    assert len(expected) == len(got)
    for e, g in zip(expected, got):
        assert math.isclose(e, g, rel_tol=1e-12, abs_tol=1e-12)


def test_spec_pack_layout():
    spec = StencilSpec.five_point()
    raw = spec.pack()
    from repro.models.stencil import MAX_POINTS
    assert len(raw) == 8 + MAX_POINTS * 24
    import struct

    assert struct.unpack_from("<q", raw)[0] == 5
    f, dx, dy = struct.unpack_from("<dqq", raw, 8)
    assert (f, dx, dy) == (0.25, -1, 0)


def test_grouping_merges_equal_coefficients():
    groups = StencilSpec.five_point().grouped()
    assert len(groups) == 2
    assert groups[0][0] == 0.25 and len(groups[0][1]) == 4
    assert groups[1][0] == -1.0 and len(groups[1][1]) == 1


def test_generic_matches_oracle(lab):
    lab.run_generic(ITERS)
    assert_matches_oracle(lab, ITERS)


def test_manual_matches_oracle(lab):
    lab.run_manual(ITERS)
    assert_matches_oracle(lab, ITERS)


def test_grouped_generic_matches_oracle(lab):
    lab.run_grouped_generic(ITERS)
    assert_matches_oracle(lab, ITERS)


def test_compiler_inlined_matches_oracle(lab):
    lab.run_compiler_inlined(ITERS)
    assert_matches_oracle(lab, ITERS)


def test_rewritten_matches_oracle(lab):
    result = lab.rewrite_apply()
    assert result.ok, result.message
    lab.run_with_apply(result.entry, ITERS)
    assert_matches_oracle(lab, ITERS)


def test_rewritten_grouped_matches_oracle(lab):
    result = lab.rewrite_apply(grouped=True)
    assert result.ok, result.message
    lab.run_with_apply(result.entry, ITERS, grouped=True)
    assert_matches_oracle(lab, ITERS)


def test_rewritten_sweep_matches_oracle(lab):
    result = lab.rewrite_sweep()
    assert result.ok, result.message
    lab.reset_matrices()
    src, dst = lab.m1, lab.m2
    for _ in range(ITERS):
        lab.machine.call(result.entry, src, dst, XS, YS, lab.s_addr,
                         lab.machine.symbol("apply"))
        src, dst = dst, src
    lab.final_matrix = src
    assert_matches_oracle(lab, ITERS)


def test_section_v_cost_ordering(lab):
    """The paper's qualitative result: manual < rewritten < generic, and
    grouped-generic is the slowest generic variant."""
    generic = lab.run_generic(1).cycles
    manual = lab.run_manual(1).cycles
    grouped = lab.run_grouped_generic(1).cycles
    rewritten = lab.rewrite_apply()
    assert rewritten.ok
    rew = lab.run_with_apply(rewritten.entry, 1).cycles
    grouped_rewritten = lab.rewrite_apply(grouped=True)
    assert grouped_rewritten.ok
    rew_grouped = lab.run_with_apply(grouped_rewritten.entry, 1, grouped=True).cycles

    assert manual < generic
    assert rew < generic
    assert manual <= rew  # naive rewrite does not beat manual (Sec. V.A)
    assert grouped > generic  # grouping slows the generic version (Sec. V.B)
    # grouping lets the rewritten version close (most of) the gap to manual
    assert rew_grouped <= rew


def test_rewritten_apply_has_no_loop(lab):
    """Figure 6: the specialized apply is straight-line code."""
    from repro.isa.encoding import iter_decode
    from repro.isa.opcodes import OpClass, op_info

    result = lab.rewrite_apply()
    assert result.ok
    code = lab.machine.image.peek(result.entry, result.code_size)
    ops = [i.op for i in iter_decode(code, result.entry)]
    assert not any(op_info(op).opclass in (OpClass.JMP, OpClass.JCC) for op in ops)
    # 5 multiplications, one per stencil point
    mulsd = [op for op in ops if op.name == "MULSD"]
    assert len(mulsd) == len(lab.spec.points)


def test_nine_point_stencil_also_works():
    lab = StencilLab(xs=12, ys=12, spec=StencilSpec.nine_point())
    result = lab.rewrite_apply()
    assert result.ok, result.message
    lab.run_with_apply(result.entry, 1)
    got = lab.read_matrix(lab.final_matrix)
    expected = expected_after(lab, 1)
    for e, g in zip(expected, got):
        assert math.isclose(e, g, rel_tol=1e-12, abs_tol=1e-12)
