"""Distributed-stencil tests: the capstone workload combining the PGAS
substrate, the stencil library, specialization and halo prefetch."""

from __future__ import annotations

import math

import pytest

from repro.models.distributed_stencil import DistributedStencilLab


@pytest.fixture(scope="module")
def lab() -> DistributedStencilLab:
    return DistributedStencilLab(xs=16, rows_per_node=4, nnodes=3, remote_cost=150)


def assert_matches_oracle(lab, tol=1e-12):
    got = lab.read_out()
    want = lab.reference_out()
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert math.isclose(g, w, rel_tol=tol, abs_tol=tol)


def test_generic_sweep_matches_oracle(lab):
    outcome = lab.run_generic()
    assert_matches_oracle(lab)
    # node 0 has no row above it; only the bottom halo row is remote
    assert outcome.run.perf.remote_accesses == lab.xs - 2


def test_rewritten_sweep_matches_and_speeds_up(lab):
    generic = lab.run_generic()
    result = lab.rewrite_sweep()
    assert result.ok, result.message
    rewritten = lab.run_rewritten(result)
    assert_matches_oracle(lab)
    assert rewritten.run.cycles < generic.run.cycles
    # the indirect accessor calls are gone
    assert rewritten.run.perf.calls == 0
    # but the halo traffic is still remote
    assert rewritten.run.perf.remote_accesses == generic.run.perf.remote_accesses


def test_halo_prefetch_removes_remote_traffic(lab):
    outcome, result = lab.run_halo_prefetched()
    assert result.ok
    assert_matches_oracle(lab)
    assert outcome.run.perf.remote_accesses == 0
    assert outcome.extra_cycles > 0  # the exchange was charged


def test_full_ladder_ordering(lab):
    generic = lab.run_generic()
    plain = lab.rewrite_sweep()
    assert plain.ok
    rewritten = lab.run_rewritten(plain)
    halo, _ = lab.run_halo_prefetched()
    # generic > rewritten > halo-prefetched (totals include exchange cost)
    assert rewritten.run.cycles < generic.run.cycles
    assert halo.total_cycles < rewritten.run.cycles


def test_bottom_rank_halo_reaches_up():
    """The last rank's sweep needs the row *above* its slice, owned by
    its neighbour; that neighbour's window is mapped, so the generic
    accessor resolves it remotely and the answers stay exact."""
    lab = DistributedStencilLab(xs=12, rows_per_node=4, nnodes=3)
    last = lab.nnodes - 1
    import struct

    node_base = lab.remote_base + last * lab.remote_stride
    lab.myrank = last
    lab.machine.image.poke(lab.dg_addr, struct.pack(
        "<9q", lab.xs, lab.ys, lab.rowblock, last, node_base,
        lab.remote_base, lab.remote_stride, lab.halo, 0,
    ))
    lab.clear_out()
    run = lab.machine.call(
        "dg_sweep", lab.dg_addr, lab.out, lab.s_addr, lab.machine.symbol("dg_get")
    )
    got = lab.read_out()
    # the host-side oracle must read the fill-time physical layout
    lab.myrank = 0
    first = last * lab.rowblock
    for r in range(lab.rowblock):
        y = first + r
        if not (0 < y < lab.ys - 1):
            continue
        for x in range(1, lab.xs - 1):
            want = sum(
                f * lab.value_at(y + dy, x + dx)
                for f, dx, dy in lab.spec.points
            )
            assert math.isclose(got[r * lab.xs + x], want, rel_tol=1e-12)
