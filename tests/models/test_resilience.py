"""Fault-tolerant distributed runtime tests: resilient RDMA prefetch,
guarded stencil degradation, breaker-driven re-promotion, and network
fault injection.

The contract: an interconnect fault may cost cycles (retries, timeouts,
surcharged per-access fallback) but may never change an answer and may
never escape as an exception — Sec. III.G's robustness property applied
to the distributed runtime."""

from __future__ import annotations

import math

import pytest

from repro.errors import FAILURE_REASONS
from repro.machine.link import BREAKER_OPEN, FaultProfile
from repro.models.distributed_stencil import DistributedStencilLab
from repro.models.pgas import PgasLab
from repro.models.rdma import RdmaPrefetcher
from repro.testing import EXPECTED_REASON, NETWORK_FAULT_KINDS, inject_fault


def _rdma_setup(faults=None, seed=0, **options):
    lab = PgasLab(nelems=512, nnodes=4)
    lab.attach_interconnect(faults=faults, seed=seed, **options)
    pre = RdmaPrefetcher(lab)
    return lab, pre, lab.block, 3 * lab.block


def _stencil_setup(faults=None, seed=0, **options):
    lab = DistributedStencilLab(xs=16, rows_per_node=4, nnodes=3)
    lab.attach_interconnect(faults=faults, seed=seed, **options)
    return lab


def _matches(out, oracle) -> bool:
    return all(abs(a - b) < 1e-9 for a, b in zip(out, oracle))


# ------------------------------------------------------------ RDMA resilient
def test_resilient_rdma_clean_network_matches_legacy_bit_for_bit():
    lab, pre, lo, hi = _rdma_setup()
    rr = pre.run_resilient(lo, hi)
    assert rr.path == "redirected" and not rr.failures

    legacy_lab = PgasLab(nelems=512, nnodes=4)
    legacy = RdmaPrefetcher(legacy_lab)
    run, cost = legacy.run_prefetched(lo, hi)
    assert rr.run.float_return == run.float_return
    assert rr.total_cycles == run.cycles + cost


def test_rdma_dead_network_falls_back_with_tagged_reason():
    lab, pre, lo, hi = _rdma_setup(faults=FaultProfile(drop=1.0), seed=3)
    ref = lab.reference_sum(lo, hi)
    rr = pre.run_resilient(lo, hi)
    assert rr.path == "remote-fallback"
    assert math.isclose(rr.run.float_return, ref, rel_tol=1e-12)
    assert rr.failures and all(f == "link-drop" for f in rr.failures)
    assert all(f in FAILURE_REASONS for f in rr.failures)
    assert pre.fallbacks == 1 and pre.promotions == 0


def test_rdma_repromotes_after_heal_and_breaker_cooldown():
    lab, pre, lo, hi = _rdma_setup(
        faults=FaultProfile(drop=1.0), seed=3,
        breaker_threshold=1, breaker_cooldown_epochs=2,
    )
    ref = lab.reference_sum(lo, hi)
    paths = [pre.run_resilient(lo, hi).path for _ in range(2)]
    assert paths == ["remote-fallback"] * 2
    assert any(b.state == BREAKER_OPEN for b in lab.transfers.breakers.values())
    # the network heals; while breakers cool the model stays degraded,
    # then the half-open probe succeeds and promotion returns
    lab.transfers.set_faults(FaultProfile())
    later = [pre.run_resilient(lo, hi) for _ in range(3)]
    assert later[-1].path == "redirected"
    assert all(math.isclose(r.run.float_return, ref, rel_tol=1e-12) for r in later)
    assert lab.transfers.stats()["rejected"] > 0


# -------------------------------------------------------- guarded stencil
def test_guarded_sweep_halo_path_matches_legacy_and_oracle():
    lab = _stencil_setup()
    ep = lab.run_resilient()
    out = lab.read_out()
    assert ep.path == "halo"
    assert ep.outcome.run.perf.remote_accesses == 0
    assert _matches(out, lab.reference_out())

    legacy = DistributedStencilLab(xs=16, rows_per_node=4, nnodes=3)
    legacy.run_halo_prefetched()
    assert out == legacy.read_out()


def test_one_flag_degradation_takes_remote_path_and_stays_correct():
    lab = _stencil_setup()
    ep = lab.run_resilient()
    halo_cycles = ep.outcome.run.cycles
    # flip the dynamic cell: the SAME specialized kernel now routes
    # boundary accesses through the per-access remote path
    lab.set_halo_avail(False)
    degraded = lab.run_rewritten(lab._guarded)
    assert _matches(lab.read_out(), lab.reference_out())
    assert degraded.run.perf.remote_accesses > 0
    assert degraded.run.cycles > halo_cycles


def test_stencil_epochs_degrade_then_repromote():
    lab = _stencil_setup(faults=FaultProfile(drop=1.0), seed=5)
    oracle = lab.reference_out()
    paths = []
    for _ in range(3):
        ep = lab.run_resilient()
        paths.append(ep.path)
        assert _matches(lab.read_out(), oracle)
        assert ep.failures and all(f.startswith("link-") for f in ep.failures)
    assert paths == ["remote-fallback"] * 3
    lab.transfers.set_faults(FaultProfile())
    for _ in range(4):
        ep = lab.run_resilient()
        paths.append(ep.path)
        assert _matches(lab.read_out(), oracle)
    assert paths[-1] == "halo"
    assert lab.fallbacks >= 3 and lab.promotions >= 1


def test_mid_sweep_invalidation_falls_back_via_guard_compare():
    """Acceptance: invalidate the halo mirror *mid-sweep* (a spy flips
    ``haloavail`` after the first halo reads) — the already-running
    specialized kernel degrades through its live guard compare to the
    per-access remote path and the output is still correct."""
    lab = _stencil_setup()
    # fill the mirror and mark it valid, as run_resilient would
    cost, reports = lab.exchange_halo_resilient()
    assert reports and all(r.ok for r in reports)
    lab.set_halo_avail(True)

    halo_window = (lab.halo, lab.halo + 2 * lab.xs * 8)
    seen = {"halo_reads": 0}

    def spy(cpu) -> None:
        addr = cpu.regs[7]
        if halo_window[0] <= addr < halo_window[1]:
            seen["halo_reads"] += 1
            if seen["halo_reads"] == 2:
                lab.set_halo_avail(False)  # mirror invalidated mid-sweep

    hook = lab.machine.register_host_function("midsweep_invalidator", spy)
    guarded = lab.rewrite_sweep_guarded(memory_hook=hook)
    assert guarded.ok, guarded.message
    outcome = lab.run_rewritten(guarded)

    assert seen["halo_reads"] >= 2, "the sweep reached the halo mirror"
    assert _matches(lab.read_out(), lab.reference_out())
    # after the flip, boundary accesses provably went remote — the
    # guard compare, not a respecialization, made the switch
    assert outcome.run.perf.remote_accesses > 0

    # a clean guarded run on the same lab (flag restored) is remote-free
    lab.set_halo_avail(True)
    clean = lab.run_rewritten(guarded)
    assert clean.run.perf.remote_accesses == 0
    assert _matches(lab.read_out(), lab.reference_out())


# ------------------------------------------------------ network fault classes
@pytest.mark.parametrize("kind", NETWORK_FAULT_KINDS)
def test_injected_network_fault_terminal_reason_is_documented(kind):
    """With retries disabled, one injected wire fault is terminal and
    surfaces as the documented ``link-*`` reason on the fallback path."""
    lab, pre, lo, hi = _rdma_setup(max_attempts=1)
    ref = lab.reference_sum(lo, hi)
    with inject_fault(kind, nth=1) as injector:
        rr = pre.run_resilient(lo, hi)
    assert injector.fired
    assert rr.path == "remote-fallback"
    assert EXPECTED_REASON[kind] in rr.failures
    assert all(f in FAILURE_REASONS for f in rr.failures)
    assert math.isclose(rr.run.float_return, ref, rel_tol=1e-12)


@pytest.mark.parametrize("kind", NETWORK_FAULT_KINDS)
def test_injected_network_fault_is_retried_through(kind):
    """With the default retry budget a single injected fault is absorbed:
    the transfer recovers on a later attempt and promotion goes through.
    (A partition latches, so give retries room to outlast it.)"""
    lab, pre, lo, hi = _rdma_setup(max_attempts=8)
    with inject_fault(kind, nth=1) as injector:
        rr = pre.run_resilient(lo, hi)
    assert injector.fired
    assert rr.path == "redirected"
    assert not rr.failures
    assert lab.transfers.stats()["retries"] >= 1


@pytest.mark.parametrize("kind", NETWORK_FAULT_KINDS)
def test_injected_network_fault_on_stencil_never_escapes(kind):
    lab = _stencil_setup(max_attempts=1)
    oracle = lab.reference_out()
    with inject_fault(kind, nth=1) as injector:
        ep = lab.run_resilient()
    assert injector.fired
    assert ep.path == "remote-fallback"
    assert EXPECTED_REASON[kind] in ep.failures
    assert _matches(lab.read_out(), oracle)
