"""PGAS global-array tests: correctness vs oracle, remote-access
accounting, and the abstraction-overhead relationships of EXP-6."""

from __future__ import annotations

import math

import pytest

from repro.models.pgas import PgasLab

N = 256
NODES = 4


@pytest.fixture(scope="module")
def lab() -> PgasLab:
    return PgasLab(nelems=N, nnodes=NODES, remote_cost=150)


def test_local_and_remote_gets(lab):
    block = lab.block
    local = lab.get(3)
    assert math.isclose(local.float_return, lab.reference_sum(3, 4))
    assert local.perf.remote_accesses == 0
    remote = lab.get(block + 3)
    assert math.isclose(remote.float_return, lab.reference_sum(block + 3, block + 4))
    assert remote.perf.remote_accesses == 1
    assert remote.cycles > local.cycles


def test_put_local_and_remote(lab):
    lab.machine.call("ga_put", lab.ga_addr, 5, 2.5)
    assert math.isclose(lab.reference_sum(5, 6), 2.5)
    lab.machine.call("ga_put", lab.ga_addr, lab.block * 2 + 1, -1.25)
    assert math.isclose(lab.reference_sum(lab.block * 2 + 1, lab.block * 2 + 2), -1.25)
    lab.fill()


def test_generic_sum_matches_oracle(lab):
    result = lab.sum_generic(0, N)
    assert math.isclose(result.float_return, lab.reference_sum(0, N), rel_tol=1e-12)
    assert result.perf.remote_accesses == N - lab.block


def test_manual_local_sum_matches_oracle(lab):
    result = lab.sum_manual_local()
    assert math.isclose(result.float_return, lab.reference_sum(0, lab.block), rel_tol=1e-12)
    assert result.perf.remote_accesses == 0


def test_rewritten_accessor_is_drop_in(lab):
    r = lab.rewrite_accessor()
    assert r.ok, r.message
    # same answers through the rewritten accessor, local and remote
    for i in (0, 7, lab.block + 1, 3 * lab.block - 1):
        direct = lab.get(i).float_return
        rewritten = lab.machine.call(r.entry, lab.ga_addr, i).float_return
        assert math.isclose(direct, rewritten, rel_tol=1e-15)
    # and through the kernel's function pointer
    via = lab.sum_generic(0, N, getter=r.entry)
    assert math.isclose(via.float_return, lab.reference_sum(0, N), rel_tol=1e-12)


def test_rewritten_accessor_folds_descriptor_loads(lab):
    base = lab.sum_generic(0, lab.block)   # local range, generic accessor
    r = lab.rewrite_accessor()
    assert r.ok
    faster = lab.sum_generic(0, lab.block, getter=r.entry)
    assert faster.cycles < base.cycles
    # the descriptor loads are gone: strictly fewer loads per element
    assert faster.perf.loads < base.perf.loads


def test_rewritten_kernel_removes_call_overhead(lab):
    r = lab.rewrite_kernel()
    assert r.ok, r.message
    generic = lab.sum_generic(0, lab.block)
    rewritten = lab.sum_with_kernel(r.entry, 0, lab.block)
    manual = lab.sum_manual_local()
    assert math.isclose(rewritten.float_return, generic.float_return, rel_tol=1e-12)
    assert rewritten.perf.calls < generic.perf.calls  # inlined away
    # EXP-6 ordering: manual < rewritten < generic
    assert manual.cycles < rewritten.cycles < generic.cycles


def test_remote_cycles_dominate_for_remote_ranges(lab):
    local = lab.sum_generic(0, lab.block)
    remote = lab.sum_generic(lab.block, 2 * lab.block)
    assert remote.perf.remote_accesses == lab.block
    assert remote.cycles > local.cycles + 100 * lab.block


def test_uneven_distribution_rejected():
    with pytest.raises(ValueError):
        PgasLab(nelems=10, nnodes=4)
