"""Documentation completeness: every public module, class, and function
in ``repro`` carries a docstring (the deliverable (e) contract)."""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

MODULES = sorted(p for p in SRC.rglob("*.py"))


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_record(cls: ast.ClassDef) -> bool:
    """Pure data records (dataclass field lists, AST node declarations)
    are self-describing; the module docstring covers them."""
    body = [n for n in cls.body if not isinstance(n, (ast.Expr, ast.Pass))]
    return all(isinstance(n, (ast.AnnAssign, ast.Assign)) for n in body)


@pytest.mark.parametrize("path", MODULES, ids=lambda p: str(p.relative_to(SRC)))
def test_module_and_public_items_documented(path):
    tree = ast.parse(path.read_text())
    if path.name != "__init__.py" or True:
        assert ast.get_docstring(tree), f"{path} has no module docstring"
    missing: list[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and not ast.get_docstring(node):
                missing.append(f"function {node.name}")
        elif isinstance(node, ast.ClassDef):
            if (
                _is_public(node.name)
                and not ast.get_docstring(node)
                and not _is_record(node)
            ):
                missing.append(f"class {node.name}")
            else:
                for sub in node.body:
                    if (
                        isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and _is_public(sub.name)
                        and sub.name not in ("__init__", "__post_init__")
                        and not ast.get_docstring(sub)
                        and not _is_trivial(sub)
                    ):
                        missing.append(f"method {node.name}.{sub.name}")
    assert not missing, f"{path}: undocumented public items: {missing}"


def _is_trivial(fn: ast.FunctionDef) -> bool:
    """Dunders and short accessors don't need prose."""
    if fn.name.startswith("__") and fn.name.endswith("__"):
        return True
    body = [n for n in fn.body if not isinstance(n, (ast.Pass,))]
    return len(body) <= 2
