"""End-to-end minic tests: compile, load, run, check results."""

from __future__ import annotations

import pytest

from repro.machine.vm import Machine


def run(source: str, fn: str = "main", *args, opt: int = 2):
    m = Machine()
    m.load(source, opt=opt)
    return m.call(fn, *args)


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_return_constant(opt):
    assert run("long main() { return 42; }", opt=opt).int_return == 42


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_arith(opt):
    src = "long f(long a, long b) { return (a + b) * 3 - a / b - a % b; }"
    # (7+2)*3 - 3 - 1 = 23
    assert run(src, "f", 7, 2, opt=opt).int_return == 23


def test_int_alias_and_negative_div():
    src = "int f(int a, int b) { return a / b; }"
    assert run(src, "f", -7 & (2**64 - 1), 2).int_return == -3


@pytest.mark.parametrize("opt", [0, 2])
def test_float_arith(opt):
    src = "double f(double a, double b) { return (a + b) * 2.0 - a / b; }"
    assert run(src, "f", 3.0, 1.5, opt=opt).float_return == (3.0 + 1.5) * 2.0 - 2.0


def test_mixed_int_float_promotion():
    src = "double f(long a, double b) { return a + b * 2; }"
    assert run(src, "f", 3, 1.5).float_return == 6.0


def test_float_to_int_cast_truncates():
    src = "long f(double x) { return (long)x; }"
    assert run(src, "f", 41.99).int_return == 41
    assert run(src, "f", -41.99).int_return == -41


def test_int_to_float_cast():
    src = "double f(long x) { return (double)x / 2; }"
    assert run(src, "f", 7).float_return == 3.5


def test_if_else():
    src = """
    long f(long x) {
        if (x > 10) return 1;
        else if (x > 0) return 2;
        return 3;
    }
    """
    assert run(src, "f", 11).int_return == 1
    assert run(src, "f", 5).int_return == 2
    assert run(src, "f", -5 & (2**64 - 1)).int_return == 3


def test_while_loop():
    src = """
    long f(long n) {
        long total = 0;
        while (n > 0) { total += n; n--; }
        return total;
    }
    """
    assert run(src, "f", 10).int_return == 55


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_for_loop(opt):
    src = """
    long f(long n) {
        long total = 0;
        for (long i = 1; i <= n; i++) total = total + i;
        return total;
    }
    """
    assert run(src, "f", 100, opt=opt).int_return == 5050


def test_nested_loops_break_continue():
    src = """
    long f() {
        long count = 0;
        for (long i = 0; i < 10; i++) {
            if (i == 5) continue;
            if (i == 8) break;
            for (long j = 0; j < 3; j++) {
                if (j == 2) break;
                count++;
            }
        }
        return count;
    }
    """
    # i in 0..7 except 5 -> 7 iterations, each adds 2
    assert run(src, "f").int_return == 14


def test_logical_ops_short_circuit():
    src = """
    long g_calls = 0;
    long bump() { g_calls = g_calls + 1; return 1; }
    long f(long x) {
        if (x > 0 && bump() > 0) { }
        if (x > 0 || bump() > 0) { }
        return g_calls;
    }
    """
    assert run(src, "f", 1).int_return == 1  # && calls bump, || short-circuits
    assert run(src, "f", 0).int_return == 1  # && short-circuits, || calls bump


def test_logical_value_form():
    src = "long f(long a, long b) { return (a < b) + (a && b) + !a; }"
    assert run(src, "f", 0, 5).int_return == 1 + 0 + 1


def test_bitwise_and_shifts():
    src = "long f(long a, long b) { return ((a & b) | (a ^ b)) + (a << 2) + (b >> 1); }"
    a, b = 12, 10
    expected = ((a & b) | (a ^ b)) + (a << 2) + (b >> 1)
    assert run(src, "f", a, b).int_return == expected


def test_unary_ops():
    src = "long f(long a) { return -a + ~a; }"
    assert run(src, "f", 5).int_return == -5 + ~5


def test_pointers_and_deref():
    src = """
    long f(long x) {
        long v = x;
        long *p = &v;
        *p = *p + 1;
        return v;
    }
    """
    assert run(src, "f", 41).int_return == 42


def test_pointer_arithmetic():
    src = """
    long f(long *base) {
        long *p = base + 2;
        return *p + p[1] + *(base + 4) - (p - base);
    }
    """
    m = Machine()
    m.load(src)
    buf = m.image.malloc(64)
    for i in range(8):
        m.memory.write_u64(buf + 8 * i, 100 + i)
    # *p=102, p[1]=103, *(base+4)=104, p-base=2
    assert m.call("f", buf).int_return == 102 + 103 + 104 - 2


def test_local_array():
    src = """
    long f() {
        long a[10];
        for (long i = 0; i < 10; i++) a[i] = i * i;
        long total = 0;
        for (long i = 0; i < 10; i++) total += a[i];
        return total;
    }
    """
    assert run(src, "f").int_return == sum(i * i for i in range(10))


def test_2d_array():
    src = """
    double m[4][5];
    double f() {
        for (long y = 0; y < 4; y++)
            for (long x = 0; x < 5; x++)
                m[y][x] = (double)(y * 10 + x);
        return m[2][3] + m[3][4];
    }
    """
    assert run(src, "f").float_return == 23.0 + 34.0


def test_struct_members():
    src = """
    struct Point { long x; long y; double w; };
    long f() {
        struct Point p;
        p.x = 3; p.y = 4; p.w = 1.5;
        struct Point *q = &p;
        q->x = q->x + q->y;
        return p.x;
    }
    """
    assert run(src, "f").int_return == 7


def test_struct_array_field():
    src = """
    struct P { double f; long dx; long dy; };
    struct S { long ps; struct P p[4]; };
    struct S s = { 2, { {0.5, 1, 2}, {1.5, 3, 4} } };
    double f() {
        return s.p[0].f + s.p[1].f + (double)(s.p[1].dx + s.p[0].dy);
    }
    """
    assert run(src, "f").float_return == 0.5 + 1.5 + 5.0


def test_global_scalars_and_init():
    src = """
    long g = 5;
    double d = 2.5;
    long f() { g = g + 1; return g + (long)d; }
    """
    assert run(src, "f").int_return == 8


def test_global_array_init():
    src = """
    long table[5] = { 10, 20, 30 };
    long f() { return table[0] + table[2] + table[4]; }
    """
    assert run(src, "f").int_return == 40  # trailing elements zeroed


def test_function_calls():
    src = """
    long square(long x) { return x * x; }
    long f(long n) { return square(n) + square(n + 1); }
    """
    assert run(src, "f", 3, opt=0).int_return == 9 + 16


def test_recursion():
    src = """
    noinline long fib(long n) {
        if (n < 2) return n;
        return fib(n - 1) + fib(n - 2);
    }
    """
    assert run(src, "fib", 12).int_return == 144


def test_function_pointer_call():
    src = """
    typedef long (*op_t)(long, long);
    noinline long add(long a, long b) { return a + b; }
    noinline long mul(long a, long b) { return a * b; }
    long f(long which, long a, long b) {
        op_t op;
        if (which) op = add;
        else op = mul;
        return op(a, b);
    }
    """
    assert run(src, "f", 1, 3, 4).int_return == 7
    assert run(src, "f", 0, 3, 4).int_return == 12


def test_function_pointer_deref_call_syntax():
    src = """
    typedef double (*apply_t)(double, double);
    noinline double mul(double a, double b) { return a * b; }
    double f(double a, double b) {
        apply_t g = mul;
        return (*g)(a, b);
    }
    """
    assert run(src, "f", 2.0, 3.5).float_return == 7.0


def test_address_of_function():
    src = """
    noinline long inc(long x) { return x + 1; }
    long f(long x) {
        long (*p)(long);
        p = &inc;
        return p(x);
    }
    """
    assert run(src, "f", 9).int_return == 10


def test_many_mixed_args():
    src = """
    noinline double combine(long a, double x, long b, double y, long c) {
        return (double)(a + b + c) + x * y;
    }
    double f() { return combine(1, 2.0, 3, 4.0, 5); }
    """
    assert run(src, "f").float_return == 9.0 + 8.0


def test_call_preserves_live_values():
    src = """
    noinline long id(long x) { return x; }
    long f(long a) { return a + id(a * 2) + a; }
    """
    assert run(src, "f", 5).int_return == 5 + 10 + 5


def test_float_call_preserves_live_values():
    src = """
    noinline double id(double x) { return x; }
    double f(double a) { return a + id(a * 2.0) + a; }
    """
    assert run(src, "f", 1.5).float_return == 1.5 + 3.0 + 1.5


def test_void_function():
    src = """
    long g = 0;
    noinline void set(long v) { g = v; }
    long f() { set(13); return g; }
    """
    assert run(src, "f").int_return == 13


def test_sizeof():
    src = """
    struct P { double f; long dx; long dy; };
    long f() { return sizeof(struct P) + sizeof(long) + sizeof(double*); }
    """
    assert run(src, "f").int_return == 24 + 8 + 8


def test_comparisons_double():
    src = """
    long f(double a, double b) {
        return (a < b) * 1 + (a <= b) * 2 + (a > b) * 4 + (a >= b) * 8 + (a == b) * 16;
    }
    """
    assert run(src, "f", 1.0, 2.0).int_return == 1 + 2
    assert run(src, "f", 2.0, 2.0).int_return == 2 + 8 + 16
    assert run(src, "f", 3.0, 2.0).int_return == 4 + 8


def test_compound_assignment_ops():
    src = """
    long f(long a) {
        long x = a;
        x += 3; x *= 2; x -= 4; x /= 3;
        x <<= 1; x >>= 1; x &= 255; x |= 1; x ^= 2;
        return x;
    }
    """
    x = 10
    x += 3; x *= 2; x -= 4; x //= 3
    x <<= 1; x >>= 1; x &= 255; x |= 1; x ^= 2
    assert run(src, "f", 10).int_return == x


def test_extern_host_function():
    src = """
    extern long host_add(long a, long b);
    long f(long x) { return host_add(x, 10); }
    """
    m = Machine()

    def host_add(cpu):
        cpu.regs[0] = (cpu.regs[7] + cpu.regs[6]) & (2**64 - 1)  # rax = rdi+rsi

    m.register_host_function("host_add", host_add)
    m.load(src)
    assert m.call("f", 5).int_return == 15


def test_cross_unit_linking():
    m = Machine()
    m.load("long helper(long x) { return x * 3; }", unit="lib")
    m.load("extern long helper(long x); long f(long x) { return helper(x) + 1; }", unit="app")
    assert m.call("f", 4).int_return == 13


def test_global_visible_across_units():
    m = Machine()
    m.load("long shared = 7;", unit="lib")
    m.load("extern long shared; long f() { return shared; }", unit="app")
    assert m.call("f").int_return == 7
