"""minic semantic analysis: typing rules and rejection of invalid code."""

from __future__ import annotations

import pytest

from repro.errors import CompileError
from repro.cc import ast_nodes as A
from repro.cc.frontend import compile_source
from repro.cc.types import DOUBLE, LONG, PointerType


def types_of_return(source: str, fn: str = "f"):
    unit = compile_source(source, opt=0)
    ret = [s for s in unit.function(fn).body.stmts if isinstance(s, A.Return)][0]
    return ret.expr.ty


def test_int_plus_int_is_long():
    assert types_of_return("long f(long a) { return a + 1; }").is_integer


def test_mixed_arith_promotes_to_double():
    src = "double f(long a, double b) { return a + b; }"
    assert types_of_return(src).is_float


def test_comparison_yields_long():
    assert types_of_return("long f(double a) { return a < 1.0; }").is_integer


def test_pointer_plus_int_keeps_pointer():
    t = types_of_return("double* f(double *p) { return p + 3; }")
    assert isinstance(t, PointerType)


def test_pointer_difference_is_long():
    src = "long f(double *a, double *b) { return a - b; }"
    assert types_of_return(src).is_integer


def test_implicit_conversion_inserts_cast():
    unit = compile_source("double f(long a) { return a; }", opt=0)
    ret = unit.function("f").body.stmts[0]
    assert isinstance(ret.expr, A.Cast)


@pytest.mark.parametrize("bad,fragment", [
    ("long f() { return x; }", "undeclared"),
    ("long f(long a) { double d = a; return d[0]; }", "cannot index"),
    ("long f() { 5 = 3; return 0; }", "not assignable"),
    ("long f(long a, long b) { return a % 2.0; }", "needs integers"),
    ("struct S { long x; }; long f(struct S s) { return s + 1; }", "bad operands"),
    ("long f(long a) { return a(3); }", "not a function"),
    ("long f() { return g(1); } long g(long a, long b) { return a; }", "expects 2"),
    ("void f() { return 5; }", "void function"),
    ("long f() { return; }", "missing return value"),
    ("long f() { break; return 0; }", "outside a loop"),
    ("struct S { long x; }; long f(struct S *s) { return s->y; }", "no field"),
    ("long f(double d) { return ~d; }", "needs an integer"),
    ("long f() { long a = 1; long a = 2; return a; }", "redefinition"),
    ("long f(long p) { return *p; }", "cannot dereference"),
])
def test_semantic_errors(bad, fragment):
    with pytest.raises(CompileError) as excinfo:
        compile_source(bad, opt=0)
    assert fragment in str(excinfo.value)


def test_shadowing_in_inner_scope_allowed():
    src = """
    long f(long a) {
        long x = 1;
        { long x = 2; a += x; }
        return a + x;
    }
    """
    unit = compile_source(src, opt=0)
    assert unit.function("f") is not None


def test_struct_passed_by_pointer_only():
    src = "struct S { long x; }; long f(struct S *s) { return s->x; }"
    assert compile_source(src, opt=0).function("f") is not None


def test_void_pointer_deref_rejected():
    with pytest.raises(CompileError):
        compile_source("long f(void *p) { return *p; }", opt=0)


def test_array_param_decays_to_pointer():
    unit = compile_source("long f(long a[4]) { return a[0]; }", opt=0)
    assert isinstance(unit.function("f").func_type.params[0], PointerType)


def test_global_initializer_must_be_constant():
    with pytest.raises(CompileError):
        compile_source("long g(); long x = g();", opt=0)


def test_global_initializer_count_checked():
    with pytest.raises(CompileError):
        compile_source("long a[2] = {1, 2, 3};", opt=0)
