"""minic AST-level optimizer tests: folding, inlining, loop normalization."""

from __future__ import annotations

from repro.cc import ast_nodes as A
from repro.cc.optimizer import optimize_unit
from repro.cc.parser import parse
from repro.machine.vm import Machine


def first_return(unit, fn="f"):
    def find(stmts):
        for s in stmts:
            if isinstance(s, A.Return):
                return s
            if isinstance(s, A.Block):
                found = find(s.stmts)
                if found:
                    return found
        return None

    return find(unit.function(fn).body.stmts)


def test_constant_folding_int():
    unit = optimize_unit(parse("long f() { return 2 * 3 + 4 / 2 - (7 % 3); }"), 1)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.IntLit) and ret.expr.value == 7


def test_constant_folding_float():
    unit = optimize_unit(parse("double f() { return 1.5 * 2.0 + 1.0; }"), 1)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.FloatLit) and ret.expr.value == 4.0


def test_folding_respects_truncating_division():
    unit = optimize_unit(parse("long f() { return -7 / 2; }"), 1)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.IntLit) and ret.expr.value == -3


def test_division_by_zero_not_folded():
    unit = optimize_unit(parse("long f() { return 1 / 0; }"), 1)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.Binary)  # left for runtime to fault


def test_no_folding_at_o0():
    unit = optimize_unit(parse("long f() { return 2 + 3; }"), 0)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.Binary)


def test_single_return_function_inlined_at_o2():
    src = """
    long square(long x) { return x * x; }
    long f(long a) { long r = square(a + 1); return r; }
    """
    unit = optimize_unit(parse(src), 2)
    # the VarDecl init is no longer a Call
    decls = []

    def walk(stmts):
        for s in stmts:
            if isinstance(s, A.Block):
                walk(s.stmts)
            elif isinstance(s, A.VarDecl):
                decls.append(s)

    walk(unit.function("f").body.stmts)
    assert all(not isinstance(d.init, A.Call) for d in decls if d.name == "r")


def test_noinline_respected():
    src = """
    noinline long square(long x) { return x * x; }
    long f(long a) { return square(a); }
    """
    unit = optimize_unit(parse(src), 2)
    ret = first_return(unit)
    assert isinstance(ret.expr, A.Call)


def test_multi_statement_functions_not_inlined():
    src = """
    long g(long x) { long t = x + 1; return t * 2; }
    long f(long a) { return g(a); }
    """
    unit = optimize_unit(parse(src), 2)
    assert isinstance(first_return(unit).expr, A.Call)


def test_recursive_single_return_not_inlined():
    src = """
    long r(long x) { return r(x - 1); }
    long f(long a) { return r(a); }
    """
    unit = optimize_unit(parse(src), 2)
    assert isinstance(first_return(unit).expr, A.Call)


def test_loop_normalization_only_for_nonliteral_start():
    src = """
    long g();
    long f(long n) {
        long a = 0;
        for (long i = 0; i < n; i++) a += i;      // literal start: untouched
        for (long j = g(); j < n; j++) a += j;    // call start: normalized
        return a;
    }
    """
    unit = optimize_unit(parse(src), 2)

    fors = []

    def walk(s):
        if isinstance(s, A.Block):
            for x in s.stmts:
                walk(x)
        elif isinstance(s, A.For):
            fors.append(s)
            walk(s.body)

    walk(unit.function("f").body)
    # first loop keeps its init; the normalized one has none
    with_init = [f for f in fors if f.init is not None]
    without_init = [f for f in fors if f.init is None]
    assert len(with_init) == 1 and len(without_init) == 1


def test_inlining_execution_equivalence():
    src = """
    double scale(double v, double k) { return v * k + 0.5; }
    double f(double a) { return scale(a, 3.0); }
    """
    m0, m2 = Machine(), Machine()
    m0.load(src, opt=0)
    m2.load(src, opt=2)
    for a in (0.0, 1.25, -2.5):
        assert m0.call("f", a).float_return == m2.call("f", a).float_return
    # -O2 actually inlined: fewer runtime calls
    assert m2.call("f", 1.0).perf.calls < m0.call("f", 1.0).perf.calls


def test_normalization_execution_equivalence():
    src = """
    noinline long start() { return 3; }
    long f(long n) {
        long total = 0;
        for (long i = start(); i < n; i++) total += i;
        return total;
    }
    """
    m0, m2 = Machine(), Machine()
    m0.load(src, opt=0)
    m2.load(src, opt=2)
    for n in (0, 3, 4, 10):
        assert m0.call("f", n).int_return == m2.call("f", n).int_return
