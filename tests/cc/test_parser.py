"""minic parser unit tests: declarators, typedefs, precedence, errors."""

from __future__ import annotations

import pytest

from repro.errors import CompileError
from repro.cc import ast_nodes as A
from repro.cc.parser import parse
from repro.cc.types import (
    ArrayType, DoubleType, FuncType, LongType, PointerType, StructType,
)


def test_int_is_long_alias():
    unit = parse("int f(int a) { return a; }")
    fn = unit.function("f")
    assert isinstance(fn.func_type.ret, LongType)
    assert isinstance(fn.func_type.params[0], LongType)


def test_pointer_declarators():
    unit = parse("double **p;")
    g = unit.globals[0]
    assert isinstance(g.var_type, PointerType)
    assert isinstance(g.var_type.pointee, PointerType)
    assert isinstance(g.var_type.pointee.pointee, DoubleType)


def test_multidim_array_declarator():
    unit = parse("double m[4][6];")
    t = unit.globals[0].var_type
    assert isinstance(t, ArrayType) and t.count == 4
    assert isinstance(t.elem, ArrayType) and t.elem.count == 6
    assert t.size == 4 * 6 * 8


def test_struct_definition_and_field_offsets():
    unit = parse("struct P { double f; long dx, dy; }; struct P g;")
    st = unit.globals[0].var_type
    assert isinstance(st, StructType)
    assert st.size == 24
    assert st.field_offset("f") == 0
    assert st.field_offset("dx") == 8
    assert st.field_offset("dy") == 16


def test_function_pointer_declarator():
    unit = parse("double (*fp)(double*, long);")
    t = unit.globals[0].var_type
    assert isinstance(t, PointerType)
    assert isinstance(t.pointee, FuncType)
    assert len(t.pointee.params) == 2


def test_typedef_function_pointer():
    unit = parse("""
    typedef long (*op_t)(long, long);
    op_t slot;
    """)
    t = unit.globals[0].var_type
    assert isinstance(t, PointerType) and isinstance(t.pointee, FuncType)


def test_typedef_scalar():
    unit = parse("typedef long index_t; index_t g; long f(index_t i) { return i; }")
    assert isinstance(unit.globals[0].var_type, LongType)


def test_extern_function_and_prototype():
    unit = parse("extern double sqrt_like(double); long g(long); ")
    externs = [i for i in unit.items if isinstance(i, A.ExternDecl)]
    assert len(externs) == 2
    assert isinstance(externs[0].decl_type, FuncType)


def test_noinline_and_const_qualifiers():
    unit = parse("""
    noinline long f(long a) { return a; }
    const double table[2] = { 1.0, 2.0 };
    """)
    assert unit.function("f").noinline
    assert unit.globals[0].const


def test_operator_precedence():
    unit = parse("long f() { return 1 + 2 * 3 < 4 == 0 && 1 || 0; }")
    ret = unit.function("f").body.stmts[0]
    assert isinstance(ret, A.Return)
    # top level must be ||
    assert isinstance(ret.expr, A.Binary) and ret.expr.op == "||"
    assert ret.expr.left.op == "&&"


def test_compound_assignment_desugars():
    unit = parse("long f(long a) { a += 2; return a; }")
    stmt = unit.function("f").body.stmts[0]
    assert isinstance(stmt, A.ExprStmt)
    assign = stmt.expr
    assert isinstance(assign, A.Assign)
    assert isinstance(assign.value, A.Binary) and assign.value.op == "+"


def test_increment_desugars():
    unit = parse("long f(long a) { a++; ++a; return a; }")
    stmts = unit.function("f").body.stmts
    for stmt in stmts[:2]:
        assert isinstance(stmt.expr, A.Assign)


def test_multi_declarator_line():
    unit = parse("long f() { long a = 1, b = 2, c; return a + b; }")
    decls = [s for s in unit.function("f").body.stmts if isinstance(s, A.VarDecl)]
    assert [d.name for d in decls] == ["a", "b", "c"]


def test_cast_vs_parenthesized_expression():
    unit = parse("""
    struct S { long x; };
    long f(long a) { return (long)(a) + (a); }
    double g(long a) { return (double)a; }
    long h(void *p) { return ((struct S*)p)->x; }
    """)
    assert unit.function("f") is not None


def test_for_with_empty_clauses():
    unit = parse("long f() { long i = 0; for (;;) { i++; if (i > 3) break; } return i; }")
    body = unit.function("f").body.stmts[1]
    assert isinstance(body, A.For) and body.init is None and body.cond is None


def test_comments_and_hex_literals():
    unit = parse("""
    // line comment
    /* block
       comment */
    long f() { return 0x10 + 1; }
    """)
    assert unit.function("f") is not None


def test_sizeof_forms():
    unit = parse("struct P { long a; double b; }; long f() { return sizeof(struct P) + sizeof(long*); }")
    assert unit.function("f") is not None


@pytest.mark.parametrize("bad", [
    "long f( { return 0; }",
    "long f() { return ; }",              # missing expression is fine? no: `return ;` is legal C... minic: expr required? -> actually allowed
    "struct { long x; } g;",               # anonymous struct unsupported
    "long f() { long 3x; }",
    "long f() { return 1 +; }",
    "long a[x];",                          # non-literal dimension
    "typedef long;",                       # typedef without a name
])
def test_syntax_errors_raise(bad):
    if bad == "long f() { return ; }":
        parse(bad)  # void-style return is legal
        return
    with pytest.raises(CompileError):
        parse(bad)


def test_error_carries_position():
    with pytest.raises(CompileError) as excinfo:
        parse("long f() {\n  return 1 +;\n}")
    assert "2:" in str(excinfo.value)
