"""Register-promotion analysis tests."""

from __future__ import annotations

from repro.cc.frontend import compile_source
from repro.cc.promote import FLOAT_PROMOTE_POOL, INT_PROMOTE_POOL, plan_promotion
from repro.isa.registers import GPR, XMM
from repro.machine.vm import Machine


def plan_for(source: str, fn: str = "f"):
    unit = compile_source(source, opt=1)
    return plan_promotion(unit.function(fn)), unit.function(fn)


def test_scalar_params_promoted():
    plan, _ = plan_for("long f(long a, long b) { return a + b; }")
    assert plan.reg_of(("param", "a")) in INT_PROMOTE_POOL
    assert plan.reg_of(("param", "b")) in INT_PROMOTE_POOL


def test_address_taken_disqualifies():
    plan, fn = plan_for("long f(long a) { long *p = &a; return *p; }")
    assert plan.reg_of(("param", "a")) is None


def test_float_promotion_only_without_calls():
    src_nocall = "double f(double a) { double t = a * 2.0; return t; }"
    plan, _ = plan_for(src_nocall)
    assert isinstance(plan.reg_of(("param", "a")), XMM)

    src_call = """
    noinline double g(double x) { return x; }
    double f(double a) { double t = g(a); return t + a; }
    """
    plan, _ = plan_for(src_call)
    assert plan.has_calls
    assert plan.reg_of(("param", "a")) is None  # no callee-saved XMM


def test_int_promotion_survives_calls():
    src = """
    noinline long g(long x) { return x; }
    long f(long a) { return g(a) + a; }
    """
    plan, _ = plan_for(src)
    assert plan.reg_of(("param", "a")) in INT_PROMOTE_POOL


def test_loop_weighting_prioritizes_hot_variables():
    src = """
    long f(long cold1, long cold2, long cold3, long cold4, long cold5, long hot) {
        long total = 0;
        for (long i = 0; i < hot; i++)
            total += i;
        return total + cold1 + cold2 + cold3 + cold4 + cold5;
    }
    """
    plan, _ = plan_for(src)
    # pool has 5 slots; the loop-heavy total/i/hot must all be in
    assert plan.reg_of(("param", "hot")) is not None


def test_aggregates_never_promoted():
    src = """
    struct S { long x; };
    long f(struct S *s) {
        struct S local;
        local.x = s->x;
        return local.x;
    }
    """
    unit = compile_source(src, opt=1)
    plan = plan_promotion(unit.function("f"))
    # the pointer param is promotable, the struct local is not
    assert plan.reg_of(("param", "s")) is not None
    local_keys = [k for k in plan.regs if not (isinstance(k, tuple) and k[0] == "param")]
    # any promoted id-keyed decls must be scalars; local (struct) is absent
    assert len(plan.regs) <= len(INT_PROMOTE_POOL) + len(FLOAT_PROMOTE_POOL)


def test_saved_registers_listed_in_pool_order():
    plan, _ = plan_for("long f(long a, long b, long c) { return a + b + c; }")
    assert plan.saved_gprs == [r for r in INT_PROMOTE_POOL if r in plan.regs.values()]


def test_promotion_preserves_semantics_under_pressure():
    # more scalars than pool slots: spills must coexist with promotion
    src = """
    long f(long a, long b, long c, long d, long e, long g) {
        long h = a + b;
        long i = c + d;
        long j = e + g;
        long k = h * i;
        return k - j + h;
    }
    """
    m0, m1 = Machine(), Machine()
    m0.load(src, opt=0)
    m1.load(src, opt=1)
    args = (3, 5, 7, 11, 13, 17)
    assert m0.call("f", *args).int_return == m1.call("f", *args).int_return


def test_promoted_callee_saved_regs_survive_calls_at_runtime():
    src = """
    noinline long clobber(long x) { return x * 2; }
    long f(long a) {
        long keep = a + 100;
        long r = clobber(a);
        return keep + r;
    }
    """
    m = Machine()
    m.load(src, opt=2)
    assert m.call("f", 5).int_return == 105 + 10
