"""Experiment harness unit tests (formatting and check bookkeeping)."""

from __future__ import annotations

from repro.experiments.harness import Experiment, Row, format_table


def make_exp() -> Experiment:
    exp = Experiment("T-1", "A demo", "Sec. X")
    exp.rows.append(Row("baseline", 1000, 1.0, "100%"))
    exp.rows.append(Row("variant", 400, 0.4, "37%", note="neat"))
    exp.rows.append(Row("unitless", 3.25))
    exp.check("variant faster", True)
    return exp


def test_format_table_contents():
    table = format_table(make_exp())
    assert "== T-1: A demo" in table
    assert "(paper: Sec. X)" in table
    assert "1,000" in table and "100.0%" in table
    assert "40.0%" in table and "37%" in table and "neat" in table
    assert "3.250" in table          # float rows keep precision
    assert "[ok] variant faster" in table


def test_checks_and_failure_rendering():
    exp = make_exp()
    exp.check("this one fails", False)
    assert not exp.all_checks_hold
    assert "[FAIL] this one fails" in format_table(exp)


def test_listing_rendering():
    exp = Experiment("T-2", "Listing", "Fig. Y", listing="i-01: ret")
    table = format_table(exp)
    assert "i-01: ret" in table


def test_empty_ratio_and_cycles_render_as_dash():
    exp = Experiment("T-3", "Sparse", "-")
    exp.rows.append(Row("row", None, None))
    table = format_table(exp)
    assert " - " in table or "-  " in table


def test_all_registered_experiments_are_callable():
    from repro.experiments import ALL_EXPERIMENTS

    names = [fn.__name__ for fn in ALL_EXPERIMENTS]
    assert len(names) == len(set(names))
    assert any(n.startswith("exp1") for n in names)
    assert any(n.startswith("ext2") for n in names)
    assert sum(1 for n in names if n.startswith("abl")) == 5
