"""CLI driver tests (``python -m repro``)."""

from __future__ import annotations

import pytest

from repro.__main__ import main

SOURCE = """
noinline long dot3(long a, long b, long k) {
    long acc = 0;
    for (long i = 0; i < k; i++)
        acc += (a + i) * (b - i);
    return acc;
}
noinline double scale(double x, double f) { return x * f; }
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "demo.mc"
    path.write_text(SOURCE)
    return str(path)


def test_run_command(source_file, capsys):
    assert main(["run", source_file, "--call", "dot3", "--args", "3", "4", "5"]) == 0
    out = capsys.readouterr().out
    assert "int=40" in out and "cycles=" in out


def test_run_command_float_args(source_file, capsys):
    assert main(["run", source_file, "--call", "scale", "--args", "2.5", "4.0"]) == 0
    assert "float=10.0" in capsys.readouterr().out


def test_disasm_command(source_file, capsys):
    assert main(["disasm", source_file, "--fn", "dot3"]) == 0
    out = capsys.readouterr().out
    assert "== dot3 ==" in out and "ret" in out


def test_disasm_all_functions(source_file, capsys):
    assert main(["disasm", source_file]) == 0
    out = capsys.readouterr().out
    assert "== dot3 ==" in out and "== scale ==" in out


def test_rewrite_command(source_file, capsys):
    rc = main(["rewrite", source_file, "--call", "dot3",
               "--known", "3", "--args", "3", "4", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "original : int=40" in out
    assert "rewritten: int=40" in out
    assert "folded" in out


def test_rewrite_with_passes(source_file, capsys):
    rc = main(["rewrite", source_file, "--call", "dot3",
               "--known", "1,2,3", "--passes", "regrename,dce,peephole",
               "--args", "3", "4", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rewritten: int=40" in out


def test_rewrite_failure_reports_and_exits_nonzero(source_file, capsys, tmp_path):
    bad = tmp_path / "bad.mc"
    bad.write_text("""
    noinline long f(long (*fp)(long)) { long (*g)(long); g = fp; return 0; }
    noinline long spin(long n) { long t = 0; for (long i = 0; i < n; i++) t += i; return t; }
    """)
    # force a budget failure
    import repro.__main__ as cli

    rc = main(["rewrite", str(bad), "--call", "spin", "--known", "1",
               "--args", "100000", "--force-unknown"])
    # force-unknown keeps it a loop: succeeds
    assert rc == 0
