"""Cycle cost model tests: the knobs calibration relies on."""

from __future__ import annotations

from repro.isa.costs import CostModel, DEFAULT_COSTS
from repro.isa.instruction import ins
from repro.isa.opcodes import Op
from repro.isa.operands import FReg, Imm, Mem, Reg
from repro.isa.registers import GPR, XMM


def cost(insn, taken=None, model=DEFAULT_COSTS):
    return model.base_cost(insn, taken)


def test_plain_alu_and_mov():
    assert cost(ins(Op.ADD, Reg(GPR.RAX), Imm(1))) == DEFAULT_COSTS.alu
    assert cost(ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RCX))) == DEFAULT_COSTS.mov


def test_memory_source_adds_load():
    m = Mem(GPR.RDI, disp=8)
    assert cost(ins(Op.MOV, Reg(GPR.RAX), m)) == DEFAULT_COSTS.mov + DEFAULT_COSTS.load
    assert cost(ins(Op.ADD, Reg(GPR.RAX), m)) == DEFAULT_COSTS.alu + DEFAULT_COSTS.load


def test_memory_destination_store_and_rmw():
    m = Mem(GPR.RDI, disp=8)
    assert cost(ins(Op.MOV, m, Reg(GPR.RAX))) == DEFAULT_COSTS.mov + DEFAULT_COSTS.store
    # read-modify-write pays both
    assert cost(ins(Op.ADD, m, Imm(1))) == (
        DEFAULT_COSTS.alu + DEFAULT_COSTS.store + DEFAULT_COSTS.load
    )


def test_lea_costs_no_memory_access():
    assert cost(ins(Op.LEA, Reg(GPR.RAX), Mem(GPR.RSP, disp=8))) == DEFAULT_COSTS.lea


def test_cmp_only_reads():
    m = Mem(GPR.RDI)
    assert cost(ins(Op.CMP, m, Imm(0))) == DEFAULT_COSTS.cmp + DEFAULT_COSTS.load


def test_branch_taken_vs_not():
    j = ins(Op.JNE, Imm(0x1000))
    assert cost(j, taken=True) == DEFAULT_COSTS.jcc_taken
    assert cost(j, taken=False) == DEFAULT_COSTS.jcc_not_taken


def test_call_ret_push_pop_touch_stack():
    assert cost(ins(Op.CALL, Imm(0x1000))) == DEFAULT_COSTS.call + DEFAULT_COSTS.store
    assert cost(ins(Op.RET)) == DEFAULT_COSTS.ret + DEFAULT_COSTS.load
    assert cost(ins(Op.PUSH, Reg(GPR.RAX))) == DEFAULT_COSTS.push + DEFAULT_COSTS.store
    assert cost(ins(Op.POP, Reg(GPR.RAX))) == DEFAULT_COSTS.pop + DEFAULT_COSTS.load


def test_float_mul_costs_more_than_add():
    add = cost(ins(Op.ADDSD, FReg(XMM.XMM0), FReg(XMM.XMM1)))
    mul = cost(ins(Op.MULSD, FReg(XMM.XMM0), FReg(XMM.XMM1)))
    assert mul > add


def test_indirect_forms_cost_more():
    assert cost(ins(Op.CALLI, Reg(GPR.RAX))) > cost(ins(Op.CALL, Imm(0)))
    assert cost(ins(Op.JMPI, Reg(GPR.RAX))) > cost(ins(Op.JMP, Imm(0)))


def test_overrides_take_precedence():
    model = CostModel(overrides={Op.IMUL: 99})
    assert cost(ins(Op.IMUL, Reg(GPR.RAX), Imm(3)), model=model) == 99


def test_custom_model_flows_through_machine():
    from repro.machine.vm import Machine

    slow = CostModel(alu=50)
    fast = CostModel(alu=1)
    src = "long f(long a) { return a + 1; }"
    m_slow, m_fast = Machine(slow), Machine(fast)
    m_slow.load(src)
    m_fast.load(src)
    assert m_slow.call("f", 1).cycles > m_fast.call("f", 1).cycles
