"""Encode/decode roundtrip tests, including a hypothesis property sweep."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError, EncodingError
from repro.isa.encoding import (
    decode,
    encode,
    encode_program,
    instruction_length,
    iter_decode,
    label_marker,
)
from repro.isa.instruction import Instruction, ins
from repro.isa.opcodes import Op, OpClass, op_info
from repro.isa.operands import FReg, Imm, Label, Mem, Reg
from repro.isa.registers import GPR, XMM


def roundtrip(insn: Instruction, addr: int = 0x1000) -> Instruction:
    code = encode(insn, addr)
    out = decode(code, addr)
    assert out.size == len(code) == instruction_length(insn)
    return out


def test_mov_reg_reg():
    insn = ins(Op.MOV, Reg(GPR.RAX), Reg(GPR.RDI))
    assert roundtrip(insn).operands == insn.operands


def test_mov_reg_imm_small_uses_imm32():
    insn = ins(Op.MOV, Reg(GPR.RAX), Imm(42))
    assert instruction_length(insn) == 2 + 1 + 4
    assert roundtrip(insn).operands == insn.operands


def test_mov_reg_imm_large_uses_imm64():
    insn = ins(Op.MOV, Reg(GPR.RAX), Imm(0x1234_5678_9ABC_DEF0))
    assert instruction_length(insn) == 2 + 1 + 8
    assert roundtrip(insn).operands == insn.operands


def test_negative_imm_roundtrip():
    insn = ins(Op.ADD, Reg(GPR.RCX), Imm(-7))
    out = roundtrip(insn)
    assert isinstance(out.operands[1], Imm)
    assert out.operands[1].signed == -7


def test_mem_full_form():
    m = Mem(GPR.RDI, GPR.RCX, 8, -16)
    insn = ins(Op.MOV, Reg(GPR.RAX), m)
    assert roundtrip(insn).operands[1] == m


def test_mem_disp_only():
    m = Mem(disp=0x615100)
    insn = ins(Op.MOVSD, FReg(XMM.XMM1), m)
    assert roundtrip(insn).operands == (FReg(XMM.XMM1), m)


def test_branch_encodes_relative_decodes_absolute():
    insn = ins(Op.JMP, Imm(0x2000))
    code = encode(insn, 0x1000)
    out = decode(code, 0x1000)
    assert out.operands == (Imm(0x2000),)


def test_backward_branch():
    insn = ins(Op.JNE, Imm(0x0F00))
    out = decode(encode(insn, 0x1000), 0x1000)
    assert out.operands == (Imm(0x0F00),)


def test_call_rel_roundtrip():
    insn = ins(Op.CALL, Imm(0x5555))
    out = decode(encode(insn, 0x1234), 0x1234)
    assert out.operands == (Imm(0x5555),)


def test_zero_operand_ops():
    for op in (Op.RET, Op.NOP, Op.HLT):
        out = roundtrip(ins(op))
        assert out.op is op and out.operands == ()


def test_unknown_opcode_byte_raises():
    with pytest.raises(DecodeError):
        decode(bytes([0xFF, 0x00]), 0)


def test_truncated_raises():
    code = encode(ins(Op.MOV, Reg(GPR.RAX), Imm(1)))
    with pytest.raises(DecodeError):
        decode(code[:3], 0)


def test_unresolved_label_raises():
    with pytest.raises(EncodingError):
        encode(ins(Op.JMP, Label("nowhere")))


def test_three_operands_rejected():
    insn = Instruction(Op.ADD, (Reg(GPR.RAX), Reg(GPR.RBX), Reg(GPR.RCX)))
    with pytest.raises(EncodingError):
        encode(insn)


def test_encode_program_resolves_labels():
    items = [
        label_marker("top"),
        ins(Op.DEC, Reg(GPR.RCX)),
        ins(Op.JNE, Label("top")),
        ins(Op.RET),
    ]
    code, labels = encode_program(items, base_addr=0x400)
    assert labels["top"] == 0x400
    decoded = list(iter_decode(code, 0x400))
    assert decoded[1].op is Op.JNE
    assert decoded[1].operands == (Imm(0x400),)


def test_encode_program_undefined_label():
    with pytest.raises(EncodingError):
        encode_program([ins(Op.JMP, Label("missing"))])


def test_extra_labels_bind_external_symbols():
    code, labels = encode_program(
        [ins(Op.CALL, Label("ext"))], base_addr=0, extra_labels={"ext": 0x9000}
    )
    out = decode(code, 0)
    assert out.operands == (Imm(0x9000),)


# ---------------------------------------------------------------- property

_gprs = st.sampled_from(list(GPR))
_xmms = st.sampled_from(list(XMM))
_imms = st.integers(min_value=-(2**63), max_value=2**64 - 1).map(Imm)
_mems = st.builds(
    Mem,
    base=st.one_of(st.none(), _gprs),
    index=st.one_of(st.none(), _gprs),
    scale=st.sampled_from([1, 2, 4, 8]),
    disp=st.integers(min_value=-(2**31), max_value=2**31 - 1),
)

_int2ops = st.sampled_from([Op.MOV, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL, Op.CMP])


@given(op=_int2ops, dst=_gprs, src=st.one_of(_gprs.map(Reg), _imms, _mems))
def test_roundtrip_property_int_ops(op, dst, src):
    insn = ins(op, Reg(dst), src)
    out = roundtrip(insn)
    assert out.op is op
    assert out.operands[0] == Reg(dst)
    assert out.operands[1] == src


@given(
    op=st.sampled_from([Op.MOVSD, Op.ADDSD, Op.SUBSD, Op.MULSD, Op.DIVSD]),
    dst=_xmms,
    src=st.one_of(_xmms.map(FReg), _mems),
)
def test_roundtrip_property_float_ops(op, dst, src):
    insn = ins(op, FReg(dst), src)
    assert roundtrip(insn).operands == (FReg(dst), src)


@given(
    op=st.sampled_from([o for o in Op if op_info(o).opclass is OpClass.JCC]),
    addr=st.integers(min_value=0, max_value=2**30),
    target=st.integers(min_value=0, max_value=2**30),
)
def test_roundtrip_property_branches(op, addr, target):
    # |target - addr| must fit a rel32; 2**30 bounds keep it in range
    insn = ins(op, Imm(target))
    out = decode(encode(insn, addr), addr)
    assert out.operands == (Imm(target),)


def test_branch_displacement_out_of_range_rejected():
    with pytest.raises(EncodingError):
        encode(ins(Op.JE, Imm(0)), 2**31 - 5)
