"""Value/flag semantics tests (shared by CPU and tracer — see module doc)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import CpuError
from repro.isa.flags import Cond, Flag, cond_holds
from repro.isa.opcodes import Op
from repro.isa import semantics as S


ints = st.integers(min_value=0, max_value=2**64 - 1)


def test_signed_unsigned_views():
    assert S.to_signed(2**64 - 1) == -1
    assert S.to_unsigned(-1) == 2**64 - 1
    assert S.to_signed(5) == 5


def test_add_wraps_and_sets_carry():
    result, flags = S.int_binop(Op.ADD, 2**64 - 1, 1)
    assert result == 0
    assert flags[Flag.ZF] and flags[Flag.CF]


def test_sub_borrow():
    result, flags = S.int_binop(Op.SUB, 0, 1)
    assert result == 2**64 - 1
    assert flags[Flag.CF] and flags[Flag.SF] and not flags[Flag.ZF]


def test_cmp_equals_sets_zf():
    _, flags = S.int_binop(Op.CMP, 42, 42)
    assert flags[Flag.ZF]
    assert cond_holds(Cond.E, flags)
    assert not cond_holds(Cond.NE, flags)


def test_signed_comparison_via_flags():
    _, flags = S.int_binop(Op.CMP, S.to_unsigned(-5), 3)
    assert cond_holds(Cond.L, flags)
    assert not cond_holds(Cond.G, flags)
    # unsigned view: huge > 3
    assert cond_holds(Cond.A, flags)


def test_imul_overflow_flag():
    _, flags = S.int_binop(Op.IMUL, 2**62, 4)
    assert flags[Flag.CF] and flags[Flag.OF]
    result, flags = S.int_binop(Op.IMUL, 6, 7)
    assert result == 42 and not flags[Flag.CF]


def test_shifts():
    assert S.int_binop(Op.SHL, 1, 4)[0] == 16
    assert S.int_binop(Op.SHR, S.to_unsigned(-1), 63)[0] == 1
    assert S.to_signed(S.int_binop(Op.SAR, S.to_unsigned(-8), 1)[0]) == -4
    # counts are masked to 6 bits
    assert S.int_binop(Op.SHL, 1, 64)[0] == 1


def test_unops():
    result, flags = S.int_unop(Op.NEG, 1)
    assert S.to_signed(result) == -1 and flags is not None
    result, flags = S.int_unop(Op.NOT, 0)
    assert result == 2**64 - 1 and flags is None
    assert S.int_unop(Op.INC, 41)[0] == 42
    assert S.int_unop(Op.DEC, 43)[0] == 42


def test_idiv_truncates_toward_zero():
    q, r = S.idiv(S.to_unsigned(-7), 2)
    assert S.to_signed(q) == -3 and S.to_signed(r) == -1
    q, r = S.idiv(7, S.to_unsigned(-2))
    assert S.to_signed(q) == -3 and S.to_signed(r) == 1


def test_idiv_by_zero_raises():
    with pytest.raises(CpuError):
        S.idiv(1, 0)


def test_float_ops():
    assert S.float_binop(Op.ADDSD, 1.5, 2.5) == 4.0
    assert S.float_binop(Op.MULSD, 3.0, -2.0) == -6.0
    assert S.float_binop(Op.DIVSD, 1.0, 0.0) == math.inf


def test_ucomisd():
    flags = S.ucomisd_flags(1.0, 2.0)
    assert flags[Flag.CF] and not flags[Flag.ZF]
    flags = S.ucomisd_flags(2.0, 2.0)
    assert flags[Flag.ZF] and not flags[Flag.CF]
    flags = S.ucomisd_flags(math.nan, 2.0)
    assert flags[Flag.ZF] and flags[Flag.CF]


def test_conversions():
    assert S.cvtsi2sd(S.to_unsigned(-3)) == -3.0
    assert S.to_signed(S.cvttsd2si(-3.99)) == -3
    assert S.cvttsd2si(math.nan) == 1 << 63


def test_packed():
    assert S.packed_binop(Op.ADDPD, (1.0, 2.0), (10.0, 20.0)) == (11.0, 22.0)
    assert S.packed_binop(Op.MULPD, (2.0, 3.0), (4.0, 5.0)) == (8.0, 15.0)
    assert S.packed_binop(Op.HADDPD, (1.0, 2.0), (3.0, 4.0)) == (3.0, 7.0)


# ---------------------------------------------------------------- property

@given(a=ints, b=ints)
def test_add_matches_python_mod_2_64(a, b):
    result, _ = S.int_binop(Op.ADD, a, b)
    assert result == (a + b) % 2**64


@given(a=ints, b=ints)
def test_sub_matches_python_mod_2_64(a, b):
    result, _ = S.int_binop(Op.SUB, a, b)
    assert result == (a - b) % 2**64


@given(a=ints, b=ints)
def test_cmp_flags_give_correct_signed_ordering(a, b):
    _, flags = S.int_binop(Op.CMP, a, b)
    sa, sb = S.to_signed(a), S.to_signed(b)
    assert cond_holds(Cond.L, flags) == (sa < sb)
    assert cond_holds(Cond.LE, flags) == (sa <= sb)
    assert cond_holds(Cond.G, flags) == (sa > sb)
    assert cond_holds(Cond.GE, flags) == (sa >= sb)
    assert cond_holds(Cond.E, flags) == (sa == sb)


@given(a=ints, b=ints)
def test_cmp_flags_give_correct_unsigned_ordering(a, b):
    _, flags = S.int_binop(Op.CMP, a, b)
    assert cond_holds(Cond.B, flags) == (a < b)
    assert cond_holds(Cond.BE, flags) == (a <= b)
    assert cond_holds(Cond.A, flags) == (a > b)
    assert cond_holds(Cond.AE, flags) == (a >= b)


@given(a=ints, b=ints.filter(lambda v: S.to_signed(v) != 0))
def test_idiv_identity(a, b):
    q, r = S.idiv(a, b)
    sa, sb = S.to_signed(a), S.to_signed(b)
    sq, sr = S.to_signed(q), S.to_signed(r)
    # C identity: a == q*b + r, |r| < |b|, r has sign of a (or 0)
    if abs(sq) < 2**63:  # identity only meaningful without quotient overflow
        assert sq * sb + sr == sa
        assert abs(sr) < abs(sb)


@given(cond=st.sampled_from(list(Cond)), a=ints, b=ints)
def test_cond_negation_is_complement(cond, a, b):
    _, flags = S.int_binop(Op.CMP, a, b)
    assert cond_holds(cond, flags) != cond_holds(cond.negated, flags)
