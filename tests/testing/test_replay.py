"""Deterministic replay of crash bundles and repro minimization."""

from __future__ import annotations

import dataclasses

import pytest

from repro.asm.assembler import assemble
from repro.core import BREW_KNOWN, brew_init_conf, brew_setpar
from repro.core.forensics import ForensicsHub
from repro.core.resilience import RewriteSupervisor
from repro.errors import RewriteFailure
from repro.machine.vm import Machine
from repro.service import RewriteService
from repro.service.fabric import RewriteFabric
from repro.testing import (
    materialize_torture_bundle,
    minimize_bundle,
    replay_bundle,
    run_torture,
)
from repro.testing.replay import _ddmin, _shrink_length, rendezvous_successor

SOURCE = """
noinline long poly(long x, long k) { return x * k + k; }
noinline long poly_evil(long x, long k) { return x * k + k + 1; }
"""


def _conf():
    conf = brew_init_conf()
    brew_setpar(conf, 2, BREW_KNOWN)
    return conf


@pytest.fixture(scope="module")
def rewrite_bundle():
    """An organic indirect-jump terminal failure, captured."""
    machine = Machine()
    machine.load(SOURCE)
    entry = machine.image.add_function("ij", bytes(64))
    code, _ = assemble("jmpi rdi", entry)
    machine.image.poke(entry, code)
    hub = ForensicsHub()
    RewriteSupervisor(machine, forensics=hub).rewrite(_conf(), "ij", 7, 3)
    return hub.bundles[0]


@pytest.fixture(scope="module")
def torture_bundles():
    hub = ForensicsHub()
    run_torture(424242, 10, jit_parity=False, forensics=hub)
    return list(hub.bundles)


# ------------------------------------------------------------- per kind
def test_rewrite_failure_replays_to_identical_fingerprint(rewrite_bundle):
    out = replay_bundle(rewrite_bundle)
    assert out.ok
    assert out.replayed_reason == "indirect-jump"
    assert out.replayed_fingerprint == rewrite_bundle.fingerprint


def test_shadow_divergence_replays_to_identical_fingerprint():
    machine = Machine()
    machine.load(SOURCE)
    hub = ForensicsHub()
    service = RewriteService(machine, shadow_interval=1, forensics=hub)
    service.request(_conf(), "poly", 0, 3)
    service.drain()
    key = service.manager.key_for("poly", _conf(), (5, 3))
    service.table.publish(key, machine.image.resolve("poly_evil"))
    service.call(_conf(), "poly", 5, 3)
    (bundle,) = hub.bundles
    out = replay_bundle(bundle)
    assert out.ok
    assert out.replayed_reason == "shadow-divergence"


def test_every_torture_bundle_replays_identically(torture_bundles):
    assert torture_bundles, "seed 424242 must produce non-verified images"
    for bundle in torture_bundles:
        out = replay_bundle(bundle)
        assert out.ok, (bundle.reason, out.replayed_reason)


def test_fabric_deaths_replay_from_the_journal():
    hub = ForensicsHub()
    fabric = RewriteFabric(SOURCE, shards=3, seed=9, forensics=hub)
    for i in range(6):
        fabric.request(f"t{i % 2}", _conf(), "poly", i, 3 + i)
    fabric.crash_shard(1)
    fabric.pump(1)
    fabric.stall_shard(0)
    fabric.pump(10)
    fabric.close()
    causes = {b.evidence["cause"] for b in hub.bundles}
    assert "heartbeat-timeout" in causes and any("crash" in c for c in causes)
    for bundle in hub.bundles:
        out = replay_bundle(bundle)
        assert out.ok, (bundle.evidence["cause"], out.evidence)


# ---------------------------------------------------------- strict mode
def test_strict_replay_raises_replay_mismatch_on_tampered_evidence(rewrite_bundle):
    tampered = dataclasses.replace(
        rewrite_bundle,
        evidence={**rewrite_bundle.evidence, "reason": "decode-error"},
        reason="decode-error",
    ).seal()
    with pytest.raises(RewriteFailure) as exc:
        replay_bundle(tampered, strict=True)
    assert exc.value.reason == "replay-mismatch"


def test_strict_replay_passes_a_faithful_bundle(rewrite_bundle):
    assert replay_bundle(rewrite_bundle, strict=True).ok


# ------------------------------------------------------------ minimizer
def test_minimizer_shrinks_requests_and_guest_code(torture_bundles):
    mat = materialize_torture_bundle(torture_bundles[0])
    assert mat.kind == "rewrite-failure"
    assert replay_bundle(mat).ok
    padded = dataclasses.replace(mat, requests=list(mat.requests) * 4)
    report = minimize_bundle(padded)
    assert report.requests_after < report.requests_before == 4
    assert report.code_bytes_after < report.code_bytes_before
    assert report.replays <= 200
    out = replay_bundle(report.bundle)
    assert out.ok
    assert out.replayed_reason == mat.reason


def test_minimizer_rejects_non_rewrite_failure_bundles(torture_bundles):
    with pytest.raises(ValueError):
        minimize_bundle(torture_bundles[0])


# ------------------------------------------------------------ the units
def test_ddmin_finds_a_single_failing_item():
    items = list(range(16))
    failing = lambda kept: 11 in kept
    assert _ddmin(items, failing) == [11]


def test_ddmin_keeps_a_failing_pair():
    items = list(range(8))
    failing = lambda kept: 2 in kept and 5 in kept
    assert _ddmin(items, failing) == [2, 5]


def test_ddmin_on_empty_or_unshrinkable_input():
    assert _ddmin([], lambda kept: True) == []
    assert _ddmin([1, 2], lambda kept: len(kept) == 2) == [1, 2]


def test_shrink_length_descends_to_the_smallest_failing_size():
    assert _shrink_length(512, lambda n: n >= 12) == 12
    assert _shrink_length(512, lambda n: True) == 1
    assert _shrink_length(512, lambda n: n >= 512) == 512


def test_rendezvous_successor_is_deterministic_and_live():
    live = [0, 2, 4]
    a = rendezvous_successor("digest-x", live, seed=7)
    assert a == rendezvous_successor("digest-x", live, seed=7)
    assert a in live
    assert rendezvous_successor("digest-x", [a], seed=7) == a
