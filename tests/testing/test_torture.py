"""The adversarial torture suite and its zero-silent-miscompile contract.

Three layers under test:

* the **generator** — seeded specs build byte-identical hostile images
  on every call (the determinism satellite: no wall clock, no ``id()``
  ordering anywhere in the pipeline);
* the **harness** — a sweep classifies every image as
  rewritten-verified, ``graceful:<reason>`` or a contract violation,
  and replays bit-for-bit from its seed;
* the **oracle** — sabotaged pipelines (wrong variant, raw exception,
  unregistered reason) are *caught*, proving the contract checks would
  actually fire on a real miscompile rather than vacuously passing.
"""

from __future__ import annotations

import pytest

from repro.asm.assembler import assemble
from repro.core.rewriter import RewriteResult
from repro.errors import FAILURE_REASONS
from repro.obs import Metrics
from repro.testing import TORTURE_CLASSES, generate_images, run_torture
from repro.testing.torture import build_image

#: Sweep sizes tuned for CI; the acceptance sweep (500+) runs the same
#: code path via the torture-smoke job and EXT-8.
SWEEP = 50
SEED = 424242


# ============================================================== generator
def test_generate_images_is_deterministic():
    a = generate_images(SEED, 30)
    b = generate_images(SEED, 30)
    assert a == b
    assert generate_images(SEED + 1, 30) != a


def test_generator_covers_every_class():
    kinds = {spec.kind for spec in generate_images(SEED, 300)}
    assert kinds == set(TORTURE_CLASSES)


def test_build_image_is_deterministic():
    """The same spec materializes byte-identical code and arguments."""
    spec = generate_images(SEED, 1)[0]
    m1, entry1, args1 = build_image(spec)
    m2, entry2, args2 = build_image(spec)
    assert entry1 == entry2
    assert args1 == args2
    seg1, seg2 = m1.image.seg_code, m2.image.seg_code
    assert bytes(seg1.data) == bytes(seg2.data)


@pytest.mark.parametrize("kind", sorted(TORTURE_CLASSES))
def test_each_class_builds_and_honors_the_contract(kind):
    """Every adversarial class, in isolation, stays inside the
    contract: rewritten-verified or graceful, never miscompile/escape."""
    specs = [s for s in generate_images(SEED, 200) if s.kind == kind][:3]
    assert specs, f"generator produced no {kind!r} specs in 200 draws"
    report = run_torture(SEED, specs=specs)
    assert report.contract_holds, report.outcomes
    assert report.counters[f"torture.class.{kind}"] == len(specs)


# ================================================================ harness
def test_sweep_contract_holds():
    metrics = Metrics()
    report = run_torture(SEED, SWEEP, metrics=metrics)
    assert report.contract_holds
    assert report.miscompiles == 0
    assert report.escapes == 0
    assert report.counters["torture.images"] == SWEEP
    # every image landed in exactly one classification bucket
    for outcome in report.outcomes:
        c = outcome["classification"]
        assert c == "rewritten-verified" or c.startswith("graceful:"), outcome
    # every graceful reason is a registered taxonomy entry
    for key in report.counters:
        if key.startswith("torture.graceful."):
            assert key.split("torture.graceful.", 1)[1] in FAILURE_REASONS
    # counters were mirrored into the observability registry
    snapshot = metrics.snapshot_json()
    assert '"torture.images":50' in snapshot


def test_sweep_replays_bit_for_bit():
    """The EXT-3/EXT-5 determinism pattern: one seed, one fingerprint."""
    first = run_torture(SEED, 20)
    second = run_torture(SEED, 20)
    assert first.fingerprint() == second.fingerprint()
    assert first.outcomes == second.outcomes
    assert run_torture(SEED + 7, 20).fingerprint() != first.fingerprint()


# ============================================== the oracle catches sabotage
def _well_behaved_specs(n=1):
    return [s for s in generate_images(SEED, 100)
            if s.kind == "well-behaved"][:n]


def test_oracle_catches_a_miscompiled_variant(monkeypatch):
    """A supervisor that hands out a wrong-answer variant must be
    classified as a miscompile — the contract check is not vacuous."""
    from repro.core import resilience

    class EvilSupervisor:
        def __init__(self, machine, **kwargs):
            self.machine = machine

        def rewrite(self, conf, fn, *args):
            original = self.machine.image.resolve(fn)
            wrong = self.machine.image.add_function(
                None, assemble("mov rax, 31337\nret", 0)[0])
            return RewriteResult(ok=True, original=original, entry=wrong)

    monkeypatch.setattr(resilience, "RewriteSupervisor", EvilSupervisor)
    report = run_torture(SEED, specs=_well_behaved_specs(), jit_parity=False)
    assert not report.contract_holds
    assert report.miscompiles == 1
    assert report.outcomes[0]["classification"] == "miscompile"


def test_oracle_catches_an_escaping_exception(monkeypatch):
    """A raw exception out of the pipeline is an escape, not a crash of
    the harness itself."""
    from repro.core import resilience

    class CrashySupervisor:
        def __init__(self, machine, **kwargs):
            pass

        def rewrite(self, conf, fn, *args):
            raise RuntimeError("pipeline blew up")

    monkeypatch.setattr(resilience, "RewriteSupervisor", CrashySupervisor)
    report = run_torture(SEED, specs=_well_behaved_specs(), jit_parity=False)
    assert not report.contract_holds
    assert report.escapes == 1
    assert report.outcomes[0]["reason"] == "raised:RuntimeError"


def test_oracle_catches_an_unregistered_reason(monkeypatch):
    """A failure tagged with a reason outside FAILURE_REASONS is an
    escape — the taxonomy is load-bearing, not decorative."""
    from repro.core import resilience

    class UntaggedSupervisor:
        def __init__(self, machine, **kwargs):
            self.machine = machine

        def rewrite(self, conf, fn, *args):
            return RewriteResult(
                ok=False, original=self.machine.image.resolve(fn),
                reason="made-up-reason")

    monkeypatch.setattr(resilience, "RewriteSupervisor", UntaggedSupervisor)
    report = run_torture(SEED, specs=_well_behaved_specs(), jit_parity=False)
    assert not report.contract_holds
    assert report.escapes == 1
    assert report.outcomes[0]["reason"] == "untagged:made-up-reason"
